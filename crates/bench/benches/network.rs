//! E7 as a criterion bench: end-to-end per-tick cost of the road-network
//! processors (100 ticks per iteration along a fixed tour).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use insq_baselines::NetNaiveProcessor;
use insq_core::{MovingKnn, NetInsConfig, NetInsProcessor};
use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};
use insq_roadnet::{NetPosition, NetTrajectory, NetworkVoronoi, NetworkWorld, SiteSet};
use std::hint::black_box;
use std::sync::Arc;

const TICKS: usize = 100;

fn bench_network_methods(c: &mut Criterion) {
    let net = Arc::new(
        grid_network(
            &GridConfig {
                cols: 40,
                rows: 40,
                ..GridConfig::default()
            },
            2016,
        )
        .unwrap(),
    );
    let sites = SiteSet::new(&net, random_site_vertices(&net, 120, 7).unwrap()).unwrap();
    let world = NetworkWorld::build(Arc::clone(&net), sites);
    let tour = NetTrajectory::random_tour(&net, 15, 3).unwrap();
    let positions: Vec<NetPosition> = (0..TICKS)
        .map(|i| tour.position_looped(&net, 0.03 * i as f64))
        .collect();

    let mut group = c.benchmark_group("network_per_tick");
    group.throughput(Throughput::Elements(TICKS as u64));
    group.sample_size(30);
    for k in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("INS-road", k), &k, |b, &k| {
            b.iter(|| {
                let mut p = NetInsProcessor::new(&world, NetInsConfig::new(k, 1.6)).unwrap();
                for &pos in &positions {
                    black_box(p.tick(pos));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("Naive-road", k), &k, |b, &k| {
            b.iter(|| {
                let mut p = NetNaiveProcessor::new(&net, &world.sites, k).unwrap();
                for &pos in &positions {
                    black_box(p.tick(pos));
                }
            })
        });
    }

    // The NVD build itself (amortised preprocessing).
    group.sample_size(20);
    group.bench_function("nvd_preprocess", |b| {
        b.iter(|| black_box(NetworkVoronoi::build(&net, &world.sites)))
    });
    group.finish();
}

criterion_group!(benches, bench_network_methods);
criterion_main!(benches);

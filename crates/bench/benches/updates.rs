//! E-update as a criterion bench: incremental index maintenance kernels —
//! delta application (copy-on-write clone + localized repair) vs the
//! from-scratch rebuild it replaces, for both index substrates.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insq_geom::Point;
use insq_index::{SiteDelta, VorTree};
use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig, SplitMix64};
use insq_roadnet::{NetworkVoronoi, SiteIdx, SiteSet, VertexId};
use insq_voronoi::SiteId;
use insq_workload::Distribution;
use std::hint::black_box;

fn bench_updates(c: &mut Criterion) {
    let space = insq_geom::Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let n = 5_000;
    let points = Distribution::Uniform.generate(n, &space, 3);
    let index = Arc::new(VorTree::build(points, space.inflated(10.0)).expect("valid data"));

    let mut group = c.benchmark_group("updates");
    group.sample_size(20);

    for d in [1usize, 16, 128] {
        let mut rng = SplitMix64::new(d as u64);
        let mut delta = SiteDelta::default();
        let mut used = std::collections::BTreeSet::new();
        while used.len() < d {
            used.insert(SiteId(rng.below(n) as u32));
        }
        delta.removed = used.into_iter().collect();
        while delta.added.len() < d {
            delta
                .added
                .push(Point::new(rng.range(0.0, 100.0), rng.range(0.0, 100.0)));
        }
        group.bench_with_input(BenchmarkId::new("vortree_apply_delta", d), &d, |b, _| {
            b.iter(|| {
                let mut patched = (*index).clone();
                patched.apply(black_box(&delta)).expect("valid delta");
                black_box(patched.len())
            })
        });
    }
    group.bench_with_input(BenchmarkId::new("vortree_rebuild", n), &n, |b, _| {
        b.iter(|| {
            black_box(
                VorTree::build(index.voronoi().points().to_vec(), index.voronoi().bounds())
                    .expect("valid data"),
            )
            .len()
        })
    });

    let net = grid_network(
        &GridConfig {
            cols: 25,
            rows: 25,
            ..GridConfig::default()
        },
        9,
    )
    .expect("valid grid");
    let sites = SiteSet::new(&net, random_site_vertices(&net, 200, 13).unwrap()).unwrap();
    let nvd = NetworkVoronoi::build(&net, &sites);
    let free = (0..net.num_vertices() as u32)
        .map(VertexId)
        .find(|&v| sites.site_at(v).is_none())
        .expect("a free vertex");

    group.bench_with_input(BenchmarkId::new("nvd_insert_site", 1), &1, |b, _| {
        b.iter(|| {
            let mut s = sites.clone();
            let mut d = nvd.clone();
            s.insert(&net, free).expect("free vertex");
            black_box(d.insert_site(&net, black_box(free)))
        })
    });
    group.bench_with_input(BenchmarkId::new("nvd_remove_site", 1), &1, |b, _| {
        b.iter(|| {
            let mut s = sites.clone();
            let mut d = nvd.clone();
            let moved = s.remove(SiteIdx(7)).expect("removable site");
            d.remove_site(&net, SiteIdx(7), moved);
            black_box(d.num_sites())
        })
    });
    group.bench_with_input(
        BenchmarkId::new("nvd_rebuild", sites.len()),
        &sites.len(),
        |b, _| b.iter(|| black_box(NetworkVoronoi::build(&net, &sites)).num_sites()),
    );
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);

//! E8 as a criterion bench: per-tick validation kernels.
//!
//! `ins_scan` is the paper's O(k + |IS|) distance scan; `okv_point_in_poly`
//! the strict safe-region containment test; `vstar_known_region` the
//! V*-diagram radius check (excluding its per-drift re-rank).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insq_bench::euclidean_exp::build_index;
use insq_core::{influential_neighbor_set, validate_by_distance};
use insq_geom::Point;
use insq_voronoi::order_k_cell;
use insq_workload::Distribution;
use std::hint::black_box;

fn bench_validation(c: &mut Criterion) {
    let index = build_index(10_000, Distribution::Uniform, 5);
    let q = Point::new(47.3, 52.9);
    let q2 = Point::new(47.32, 52.89);
    let mut group = c.benchmark_group("validation");
    group.sample_size(60);

    for k in [2usize, 8, 32] {
        let knn: Vec<_> = index.knn(q, k).into_iter().map(|(s, _)| s).collect();
        let ins = influential_neighbor_set(index.voronoi(), &knn);
        let cell = order_k_cell(
            index.voronoi().points(),
            &knn,
            &ins,
            &index.voronoi().bounds(),
        );
        let x = (k / 2).max(2);
        let retrieved = index.knn(q, k + x);
        let known_radius = retrieved.last().unwrap().1;
        let points = index.voronoi().points();

        group.bench_with_input(BenchmarkId::new("ins_scan", k), &k, |b, _| {
            b.iter(|| black_box(validate_by_distance(points, black_box(q2), &knn, &ins)))
        });
        group.bench_with_input(BenchmarkId::new("okv_point_in_poly", k), &k, |b, _| {
            b.iter(|| black_box(cell.contains(black_box(q2))))
        });
        group.bench_with_input(BenchmarkId::new("vstar_known_region", k), &k, |b, _| {
            b.iter(|| {
                let kth = retrieved[k - 1].0;
                let d = index.point(kth).distance(black_box(q2));
                black_box(d <= known_radius - q2.distance(q))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);

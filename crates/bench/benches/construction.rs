//! E9 as a criterion bench: safe-region construction kernels per
//! recomputation — the axis on which the INS wins by design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insq_bench::euclidean_exp::build_index;
use insq_core::influential_neighbor_set;
use insq_geom::Point;
use insq_voronoi::order_k_cell;
use insq_workload::Distribution;
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let index = build_index(10_000, Distribution::Uniform, 5);
    let q = Point::new(47.3, 52.9);
    let mut group = c.benchmark_group("construction");
    group.sample_size(60);

    for k in [2usize, 8, 32] {
        let knn: Vec<_> = index.knn(q, k).into_iter().map(|(s, _)| s).collect();
        let ins = influential_neighbor_set(index.voronoi(), &knn);
        let voronoi = index.voronoi();

        group.bench_with_input(BenchmarkId::new("ins_neighbor_union", k), &k, |b, _| {
            b.iter(|| black_box(influential_neighbor_set(voronoi, black_box(&knn))))
        });
        group.bench_with_input(BenchmarkId::new("okv_order_k_cell", k), &k, |b, _| {
            b.iter(|| {
                black_box(order_k_cell(
                    voronoi.points(),
                    black_box(&knn),
                    &ins,
                    &voronoi.bounds(),
                ))
            })
        });
        let x = (k / 2).max(2);
        group.bench_with_input(BenchmarkId::new("vstar_retrieve", k), &k, |b, _| {
            b.iter(|| black_box(index.rtree().knn(black_box(q), k + x)))
        });
        group.bench_with_input(BenchmarkId::new("ins_full_prefetch", k), &k, |b, _| {
            // The whole INS recomputation: ⌊ρk⌋-NN search + neighbor union.
            b.iter(|| {
                let m = ((1.6 * k as f64).floor() as usize).max(k);
                let r: Vec<_> = index
                    .knn(black_box(q), m)
                    .into_iter()
                    .map(|(s, _)| s)
                    .collect();
                black_box(influential_neighbor_set(voronoi, &r))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);

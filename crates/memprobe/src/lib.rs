//! # insq-memprobe
//!
//! A counting [`GlobalAlloc`] wrapper over the [`System`] allocator, plus
//! (in `tests/alloc_guard.rs`) the allocation-guard suite that pins the
//! central performance claim of the scratch-arena refactor: **a
//! steady-state tick allocates nothing** — not on the §III-A / Theorem-2
//! validation path, not on a full kNN recomputation, in any space, and
//! not in the fleet engine's per-tick machinery around the queries.
//!
//! The probe counts *allocation events* (`alloc`, `alloc_zeroed`,
//! `realloc`) rather than net bytes: a transient `Vec` that is allocated
//! and freed inside one tick nets out to zero bytes but is exactly the
//! per-tick churn the scratch arenas exist to eliminate.
//!
//! This is the one crate in the workspace allowed to write `unsafe`
//! (implementing `GlobalAlloc` requires it); everything else builds under
//! `unsafe_code = "forbid"`.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-backed allocator that counts every allocation event.
///
/// Install it as the global allocator of a test binary and measure
/// deltas around the region under scrutiny:
///
/// ```ignore
/// #[global_allocator]
/// static PROBE: CountingAlloc = CountingAlloc::new();
///
/// let before = PROBE.events();
/// hot_path();
/// assert_eq!(PROBE.events() - before, 0);
/// ```
///
/// Counters are updated with relaxed atomics: cheap, and exact as long
/// as no *other* thread allocates inside the measured window (the guard
/// suite runs its measured regions single-threaded for this reason).
#[derive(Debug)]
pub struct CountingAlloc {
    allocs: AtomicU64,
    reallocs: AtomicU64,
    deallocs: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAlloc {
    /// A new probe with all counters at zero (`const`, so it can back a
    /// `#[global_allocator]` static).
    pub const fn new() -> CountingAlloc {
        CountingAlloc {
            allocs: AtomicU64::new(0),
            reallocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Total allocation events so far: `alloc` + `alloc_zeroed` calls
    /// plus `realloc` calls. The number a zero-allocation hot path must
    /// hold constant.
    pub fn events(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed) + self.reallocs.load(Ordering::Relaxed)
    }

    /// Fresh allocations (`alloc` + `alloc_zeroed`) so far.
    pub fn allocations(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// `realloc` calls so far (a growing `Vec` shows up here).
    pub fn reallocations(&self) -> u64 {
        self.reallocs.load(Ordering::Relaxed)
    }

    /// `dealloc` calls so far.
    pub fn deallocations(&self) -> u64 {
        self.deallocs.load(Ordering::Relaxed)
    }

    /// Total bytes requested across all allocation events.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.reallocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocs.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // No #[global_allocator] here — unit tests only exercise the counter
    // arithmetic through direct GlobalAlloc calls.
    #[test]
    fn counts_events_and_bytes() {
        let probe = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = probe.alloc(layout);
            assert!(!p.is_null());
            let p = probe.realloc(p, layout, 128);
            assert!(!p.is_null());
            probe.dealloc(p, Layout::from_size_align(128, 8).unwrap());
        }
        assert_eq!(probe.allocations(), 1);
        assert_eq!(probe.reallocations(), 1);
        assert_eq!(probe.events(), 2);
        assert_eq!(probe.deallocations(), 1);
        assert_eq!(probe.bytes(), 64 + 128);
    }
}

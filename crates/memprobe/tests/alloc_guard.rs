//! The allocation guard: proves the steady-state tick hot path performs
//! **zero heap allocations** — valid ticks *and* full kNN recomputations
//! — in all three spaces, standalone and under the fleet engine.
//!
//! Method: every scenario runs the same deterministic position sequence
//! twice. Pass 1 is the warm-up — scratch arenas and result buffers grow
//! to their steady-state capacities (the two warm-up laps also cover the
//! lap-boundary jump, whose recomputation the counted lap repeats). Pass
//! 2 replays the identical sequence under the counting allocator and
//! must report **zero allocation events** (`alloc`/`alloc_zeroed`/
//! `realloc`) — not merely zero net bytes, so a transient per-tick `Vec`
//! cannot hide by being freed before the end of the window.
//!
//! Everything runs inside ONE `#[test]` so no concurrent test thread can
//! allocate inside a measured window.

use std::sync::Arc;

use insq_core::{InsConfig, InsProcessor, MovingKnn, NetInsProcessor, WInsProcessor};
use insq_geom::{Aabb, Point};
use insq_index::{AxisWeights, VorTree, WeightedVorTree};
use insq_memprobe::CountingAlloc;
use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};
use insq_roadnet::{NetPosition, NetTrajectory, NetworkWorld, SiteSet};
use insq_server::{FleetConfig, FleetEngine, InsFleetQuery, World};

#[global_allocator]
static PROBE: CountingAlloc = CountingAlloc::new();

/// Allocation events inside `f`.
fn events_during<F: FnOnce()>(f: F) -> u64 {
    let before = PROBE.events();
    f();
    PROBE.events() - before
}

fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut next = lcg(seed);
    (0..n)
        .map(|_| Point::new(next() * 100.0, next() * 100.0))
        .collect()
}

/// A deterministic random walk of `steps` positions: long enough legs to
/// force steady-state recomputations, short enough steps that most ticks
/// validate — both hot paths get exercised.
fn walk(steps: usize, seed: u64) -> Vec<Point> {
    let mut next = lcg(seed);
    let mut pos = Point::new(50.0, 50.0);
    let mut target = Point::new(next() * 100.0, next() * 100.0);
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        if pos.distance(target) < 2.0 {
            target = Point::new(next() * 100.0, next() * 100.0);
        }
        let dir = (target - pos)
            .normalized()
            .unwrap_or(insq_geom::Vector::ZERO);
        pos += dir * 1.5;
        out.push(pos);
    }
    out
}

const BOUNDS: (f64, f64, f64, f64) = (-10.0, -10.0, 110.0, 110.0);

fn bounds() -> Aabb {
    Aabb::new(
        Point::new(BOUNDS.0, BOUNDS.1),
        Point::new(BOUNDS.2, BOUNDS.3),
    )
}

#[test]
fn steady_state_ticks_allocate_nothing() {
    // ------------------------------------------------ Euclidean (§III)
    let tree = VorTree::build(random_points(400, 42), bounds()).unwrap();
    let path = walk(300, 7);
    let mut p = InsProcessor::new(&tree, InsConfig::new(5, 1.6)).unwrap();
    for _ in 0..2 {
        for &q in &path {
            p.tick(q);
        }
    }
    let recomp_before = p.stats().recomputations;
    let events = events_during(|| {
        for &q in &path {
            p.tick(q);
        }
    });
    assert!(
        p.stats().recomputations > recomp_before,
        "counted lap must exercise steady-state recomputations"
    );
    assert_eq!(events, 0, "Euclidean tick path allocated");

    // ------------------------------------------- weighted Euclidean
    let wtree = WeightedVorTree::build(
        random_points(300, 9),
        bounds(),
        AxisWeights::new(1.0, 2.5).unwrap(),
    )
    .unwrap();
    let mut wp = WInsProcessor::new(&wtree, InsConfig::new(4, 1.6)).unwrap();
    for _ in 0..2 {
        for &q in &path {
            wp.tick(q);
        }
    }
    let recomp_before = wp.stats().recomputations;
    let events = events_during(|| {
        for &q in &path {
            wp.tick(q);
        }
    });
    assert!(wp.stats().recomputations > recomp_before);
    assert_eq!(events, 0, "weighted-Euclidean tick path allocated");

    // ------------------------------------------- road network (§IV)
    let net = Arc::new(
        grid_network(
            &GridConfig {
                cols: 12,
                rows: 12,
                ..GridConfig::default()
            },
            3,
        )
        .unwrap(),
    );
    let sv = random_site_vertices(&net, 30, 3).unwrap();
    let sites = SiteSet::new(&net, sv).unwrap();
    let world = NetworkWorld::build(Arc::clone(&net), sites);
    let tour = NetTrajectory::random_tour(&net, 8, 5).unwrap();
    let steps = 250;
    let net_path: Vec<NetPosition> = (0..=steps)
        .map(|i| tour.position(&net, tour.length() * i as f64 / steps as f64))
        .collect();
    let mut np = NetInsProcessor::new(&world, InsConfig::new(4, 1.6)).unwrap();
    for _ in 0..2 {
        for &q in &net_path {
            np.tick(q);
        }
    }
    let recomp_before = np.stats().recomputations;
    let events = events_during(|| {
        for &q in &net_path {
            np.tick(q);
        }
    });
    assert!(np.stats().recomputations > recomp_before);
    assert_eq!(events, 0, "road-network tick path allocated");

    // ------------------------------- fleet engine (single worker lane)
    // The engine's own per-tick machinery — position feed, per-shard
    // summaries, shard-persistent scratch — must be allocation-free too.
    let tree = Arc::new(World::new(
        VorTree::build(random_points(400, 42), bounds()).unwrap(),
    ));
    let mut fleet: FleetEngine<VorTree, InsFleetQuery> = FleetEngine::new(
        Arc::clone(&tree),
        FleetConfig {
            shards: 8,
            threads: 1,
        },
    );
    let n_queries = 32;
    for _ in 0..n_queries {
        fleet.register(InsFleetQuery::new(&tree, InsConfig::new(5, 1.6)).unwrap());
    }
    // One offset point per query; every query replays the shared walk
    // translated by its offset.
    let offsets = random_points(n_queries, 11);
    let feed = |t: usize| {
        let path = &path;
        let offsets = &offsets;
        move |id: insq_server::QueryId| {
            let o = offsets[id.index()];
            let q = path[t];
            Point::new(
                (q.x + o.x * 0.1).min(BOUNDS.2),
                (q.y + o.y * 0.1).min(BOUNDS.3),
            )
        }
    };
    for _ in 0..2 {
        for t in 0..path.len() {
            fleet.tick_all(feed(t));
        }
    }
    let events = events_during(|| {
        for t in 0..path.len() {
            fleet.tick_all(feed(t));
        }
    });
    assert_eq!(events, 0, "fleet tick_all path allocated");
}

//! Minimal, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses.
//!
//! The INSQ workspace builds fully offline, so instead of the crates.io
//! `rand` it ships this tiny API-compatible substitute: a seedable
//! xoshiro256++ generator behind [`rngs::StdRng`], the [`SeedableRng`]
//! constructor trait and an [`RngExt`] extension trait providing
//! `random()` / `random_range()`. Sequences are deterministic per seed
//! and stable across platforms, which is all the workload generators and
//! tests rely on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator (the `random()` family).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable uniformly (argument of `random_range()`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start);
                self.start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T` (`f64` in `[0, 1)`, full range
    /// for integers).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value in `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not cryptographically secure — statistical quality only, exactly
    /// like the workloads here require.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let x = rng.random_range(-3.0f64..5.0);
            assert!((-3.0..5.0).contains(&x));
            let y = rng.random_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&y));
            let n = rng.random_range(3usize..17);
            assert!((3..17).contains(&n));
            let i = rng.random_range(-8i64..=8);
            assert!((-8..=8).contains(&i));
        }
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

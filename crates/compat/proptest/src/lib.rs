//! Minimal, dependency-free stand-in for the parts of the `proptest`
//! crate this workspace uses.
//!
//! The INSQ workspace builds fully offline, so its property tests run on
//! this tiny API-compatible substitute instead of the crates.io
//! `proptest`: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `boxed`, range and tuple strategies, [`collection::vec`],
//! [`prop_oneof!`] (weighted and unweighted) and the `prop_assert*` /
//! [`prop_assume!`] macros. Failing cases report the failure message and
//! case number but are **not shrunk** — inputs are deterministic per test
//! name, so failures still reproduce exactly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the per-test case loop.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic generator handed to strategies.
    pub type TestRng = StdRng;

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases each test must pass.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case's inputs violated a `prop_assume!`; it is skipped.
        Reject,
        /// A `prop_assert*` failed: the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (assumption not met).
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Runs `case` until `config.cases` cases are accepted, panicking on
    /// the first failure. Inputs derive deterministically from `name`.
    pub fn run<F>(config: &Config, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // FNV-1a over the test name: stable per-test seeds, distinct
        // streams between tests.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng::seed_from_u64(seed);
        let mut accepted: u32 = 0;
        let mut attempts: u64 = 0;
        let max_attempts = u64::from(config.cases).saturating_mul(20).max(1024);
        while accepted < config.cases {
            if attempts >= max_attempts {
                assert!(
                    accepted > 0,
                    "proptest `{name}`: all {attempts} generated cases were rejected"
                );
                break; // Assumptions are narrow; accept the cases we got.
            }
            attempts += 1;
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{name}` failed at case {} (attempt {attempts}, seed {seed:#x}):\n{msg}",
                        accepted + 1
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no shrinking: a strategy is just a
    /// deterministic sampler over a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng: &mut TestRng| self.sample(rng)))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Weighted choice between strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.random_range(0..self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weights changed during sampling")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, usize, u64, u32, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+) ;
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Generates `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of the crate root (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run(&config, stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)+
                let case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            l,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case unless `cond` holds (does not count as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        $crate::prop_assume!($cond)
    };
}

/// Chooses between strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

//! Minimal, dependency-free stand-in for the parts of the `criterion`
//! crate this workspace uses.
//!
//! The INSQ workspace builds fully offline, so its micro-benchmarks run
//! on this tiny API-compatible substitute instead of the crates.io
//! `criterion`: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`Throughput`], [`BenchmarkId`] and [`black_box`]. Timing is a simple
//! calibrated loop reporting mean ns/iteration — good enough to compare
//! methods locally; no statistics, plots or saved baselines.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (a registry of groups).
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        };
        eprintln!("group {}", group.name);
        group
    }

    /// Benchmarks `f` as a stand-alone (ungrouped) benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one("", &id.into(), sample_size, None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs, so results can be
    /// read as elements/second.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, self.throughput, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id, self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark's identifier: a function name and/or a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: Some(name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name, &self.parameter) {
            (Some(n), Some(p)) => write!(f, "{n}/{p}"),
            (Some(n), None) => write!(f, "{n}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(name: S) -> Self {
        BenchmarkId {
            name: Some(name.into()),
            parameter: None,
        }
    }
}

/// Work performed per iteration, for elements/second reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, first calibrating an iteration count so one sample is
    /// long enough to measure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find n with runtime ≥ ~1 ms.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let t = start.elapsed();
            if t >= Duration::from_millis(1) || n >= 1 << 20 {
                self.iters_done = n;
                self.elapsed = t;
                return;
            }
            n *= 2;
        }
    }
}

fn run_one<F>(
    group: &str,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut best = f64::INFINITY;
    for _ in 0..sample_size {
        let mut b = Bencher::default();
        f(&mut b);
        if b.iters_done > 0 {
            let per_iter = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
            if per_iter < best {
                best = per_iter;
            }
        }
    }
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match throughput {
        Some(Throughput::Elements(n)) if best.is_finite() && best > 0.0 => {
            let rate = n as f64 * 1e9 / best;
            eprintln!("  {label}: {best:.1} ns/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if best.is_finite() && best > 0.0 => {
            let rate = n as f64 * 1e9 / best;
            eprintln!("  {label}: {best:.1} ns/iter ({rate:.0} B/s)");
        }
        _ => eprintln!("  {label}: {best:.1} ns/iter"),
    }
}

/// Collects benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! The minimal influential set (Definition 2) — ground truth.
//!
//! `MIS(O')` is the union of the k-sets of the order-k Voronoi cells
//! adjacent to `V^k(O')`, minus `O'`. It is the smallest set of guard
//! objects that still certifies a kNN result, but materialising it requires
//! order-k cell geometry — exactly the construction cost the INS avoids.
//! This module exists as the oracle against which `I(O') ⊇ MIS(O')`
//! (Theorem 1 / the companion paper's Lemma) is verified, and to reproduce
//! Fig. 1 of the paper.

use insq_voronoi::{order_k_cell_tagged, SiteId, Voronoi};

use crate::influential::influential_neighbor_set;

/// Computes `MIS(knn)` exactly, using every other site as a clipping
/// candidate — O(k · n) half-plane clips. Intended for tests, figures and
/// small inputs.
///
/// Returns `None` when `knn` is not a realisable kNN set (its order-k cell
/// is empty inside the diagram bounds).
pub fn minimal_influential_set(voronoi: &Voronoi, knn: &[SiteId]) -> Option<Vec<SiteId>> {
    let candidates: Vec<SiteId> = (0..voronoi.len() as u32).map(SiteId).collect();
    mis_with_candidates(voronoi, knn, &candidates)
}

/// Computes `MIS(knn)` clipping only against `candidates`.
///
/// Sound whenever `candidates ⊇ MIS(knn)`; the INS is such a candidate set
/// (Theorem 1), which makes `mis_with_candidates(v, knn, I(knn) ∪ knn)` an
/// efficient exact MIS construction.
pub fn mis_with_candidates(
    voronoi: &Voronoi,
    knn: &[SiteId],
    candidates: &[SiteId],
) -> Option<Vec<SiteId>> {
    let cell = order_k_cell_tagged(voronoi.points(), knn, candidates, &voronoi.bounds());
    if cell.is_empty() {
        return None;
    }
    Some(cell.adjacent_outsiders())
}

/// Computes the MIS efficiently by clipping against the INS only
/// (correct because `MIS ⊆ INS`).
pub fn mis_via_ins(voronoi: &Voronoi, knn: &[SiteId]) -> Option<Vec<SiteId>> {
    let ins = influential_neighbor_set(voronoi, knn);
    mis_with_candidates(voronoi, knn, &ins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_geom::{Aabb, Point};

    fn random_voronoi(n: usize, seed: u64) -> Voronoi {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 10.0, next() * 10.0))
            .collect();
        Voronoi::build(
            points,
            Aabb::new(Point::new(-2.0, -2.0), Point::new(12.0, 12.0)),
        )
        .unwrap()
    }

    fn brute_knn(v: &Voronoi, q: Point, k: usize) -> Vec<SiteId> {
        let mut ids = v.knn_brute(q, k);
        ids.sort_unstable();
        ids
    }

    #[test]
    fn mis_subset_of_ins_random() {
        // The central theorem: MIS(O') ⊆ I(O') for genuine kNN sets.
        let v = random_voronoi(60, 42);
        for (qi, k) in [(0usize, 1usize), (7, 2), (13, 3), (29, 5), (44, 8)] {
            let q = Point::new(v.points()[qi].x + 0.05, v.points()[qi].y + 0.03);
            let knn = brute_knn(&v, q, k);
            let mis = minimal_influential_set(&v, &knn).expect("true kNN set has a non-empty cell");
            let ins = influential_neighbor_set(&v, &knn);
            for m in &mis {
                assert!(
                    ins.contains(m),
                    "MIS member {m} missing from INS (k={k}, q={q:?})"
                );
            }
            assert!(!mis.is_empty(), "interior cells have neighbors");
        }
    }

    #[test]
    fn mis_via_ins_matches_full_mis() {
        let v = random_voronoi(40, 7);
        for (qi, k) in [(3usize, 2usize), (11, 3), (25, 4)] {
            let q = v.points()[qi];
            let q = Point::new(q.x + 0.01, q.y - 0.02);
            let knn = brute_knn(&v, q, k);
            let full = minimal_influential_set(&v, &knn);
            let fast = mis_via_ins(&v, &knn);
            assert_eq!(full, fast, "k={k} qi={qi}");
        }
    }

    #[test]
    fn non_knn_set_has_no_mis() {
        let v = random_voronoi(30, 3);
        // Nearest and farthest site from a corner can never be a 2NN set.
        let q = Point::new(0.0, 0.0);
        let all = v.knn_brute(q, 30);
        let bogus = vec![all[0].min(all[29]), all[0].max(all[29])];
        assert_eq!(minimal_influential_set(&v, &bogus), None);
    }

    #[test]
    fn mis_of_order_1_is_voronoi_neighbors() {
        // For k=1 the order-1 cell's adjacent cells are exactly the Voronoi
        // neighbors (when the cell does not touch the window boundary).
        let v = random_voronoi(80, 11);
        // Pick an interior site: one whose cell is far from the bounds.
        let bounds = v.bounds();
        let inner = (0..v.len() as u32)
            .map(SiteId)
            .find(|&s| {
                let p = v.point(s);
                p.x > 3.0 && p.x < 7.0 && p.y > 3.0 && p.y < 7.0 && {
                    let cell = v.cell(s);
                    cell.vertices().iter().all(|vtx| {
                        vtx.x > bounds.min.x + 0.5
                            && vtx.x < bounds.max.x - 0.5
                            && vtx.y > bounds.min.y + 0.5
                            && vtx.y < bounds.max.y - 0.5
                    })
                }
            })
            .expect("some interior site exists");
        let mis = minimal_influential_set(&v, &[inner]).unwrap();
        let mut nbrs: Vec<SiteId> = v.neighbors(inner).to_vec();
        nbrs.sort_unstable();
        // MIS ⊆ neighbors always; equality can fail only at degenerate
        // (cocircular) adjacencies, absent in random data.
        assert_eq!(mis, nbrs);
    }
}

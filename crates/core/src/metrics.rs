//! Cost accounting shared by every moving-kNN processor.
//!
//! The INSQ evaluation compares methods along two axes (paper §I): the
//! *construction/validation* overhead of safe regions and the
//! *communication* between query client and query processor. The counters
//! here capture both, plus the outcome classification of each timestamp
//! (the three update cases of §III-B).

/// What happened at one timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// The current kNN set is still valid; nothing was recomputed.
    Valid,
    /// The kNN set changed by exactly one object (update case (i): the
    /// query entered a neighboring order-k Voronoi cell) and was repaired
    /// locally.
    Swap,
    /// The kNN set changed by more than one object but the new set was
    /// assembled from already-held (prefetched) objects (update case (ii)).
    LocalRerank,
    /// A full recomputation was required (update case (iii)) — the only
    /// case costing a round trip for fresh objects.
    Recompute,
}

impl TickOutcome {
    /// Whether the kNN result changed at this tick.
    #[inline]
    pub fn changed(self) -> bool {
        !matches!(self, TickOutcome::Valid)
    }
}

/// Cumulative statistics of one moving query run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Timestamps processed.
    pub ticks: u64,
    /// Ticks answered as [`TickOutcome::Valid`].
    pub valid_ticks: u64,
    /// Ticks answered as [`TickOutcome::Swap`].
    pub swaps: u64,
    /// Ticks answered as [`TickOutcome::LocalRerank`].
    pub local_reranks: u64,
    /// Ticks answered as [`TickOutcome::Recompute`].
    pub recomputations: u64,
    /// Elementary validation operations: distance evaluations (Euclidean)
    /// or settled vertices (network) spent deciding whether the current
    /// result is still valid.
    pub validation_ops: u64,
    /// Elementary search operations spent recomputing results: index-node
    /// inspections, heap settles, Dijkstra relaxations.
    pub search_ops: u64,
    /// Elementary safe-region construction operations: half-plane clips
    /// for region-based baselines, neighbor-list unions for INS.
    pub construction_ops: u64,
    /// Data objects transmitted from server to client (the paper's
    /// communication cost).
    pub comm_objects: u64,
}

impl QueryStats {
    /// Records an outcome (does not touch the op counters).
    pub fn record(&mut self, outcome: TickOutcome) {
        self.ticks += 1;
        match outcome {
            TickOutcome::Valid => self.valid_ticks += 1,
            TickOutcome::Swap => self.swaps += 1,
            TickOutcome::LocalRerank => self.local_reranks += 1,
            TickOutcome::Recompute => self.recomputations += 1,
        }
    }

    /// Ticks at which the result set changed.
    pub fn changed_ticks(&self) -> u64 {
        self.swaps + self.local_reranks + self.recomputations
    }

    /// Average validation operations per tick.
    pub fn validation_ops_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.validation_ops as f64 / self.ticks as f64
        }
    }

    /// Average communication (objects) per tick.
    pub fn comm_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.comm_objects as f64 / self.ticks as f64
        }
    }

    /// Recomputation frequency: fraction of ticks needing a full
    /// recomputation.
    pub fn recompute_rate(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.recomputations as f64 / self.ticks as f64
        }
    }

    /// Total elementary operations (validation + search + construction) —
    /// the per-run "CPU cost" proxy reported by the benchmark harness.
    pub fn total_ops(&self) -> u64 {
        self.validation_ops + self.search_ops + self.construction_ops
    }

    /// Merges another run's counters into this one (for aggregating over
    /// repeated trajectories).
    pub fn merge(&mut self, other: &QueryStats) {
        self.ticks += other.ticks;
        self.valid_ticks += other.valid_ticks;
        self.swaps += other.swaps;
        self.local_reranks += other.local_reranks;
        self.recomputations += other.recomputations;
        self.validation_ops += other.validation_ops;
        self.search_ops += other.search_ops;
        self.construction_ops += other.construction_ops;
        self.comm_objects += other.comm_objects;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies() {
        let mut s = QueryStats::default();
        s.record(TickOutcome::Valid);
        s.record(TickOutcome::Valid);
        s.record(TickOutcome::Swap);
        s.record(TickOutcome::LocalRerank);
        s.record(TickOutcome::Recompute);
        assert_eq!(s.ticks, 5);
        assert_eq!(s.valid_ticks, 2);
        assert_eq!(s.swaps, 1);
        assert_eq!(s.local_reranks, 1);
        assert_eq!(s.recomputations, 1);
        assert_eq!(s.changed_ticks(), 3);
        assert!((s.recompute_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rates_on_empty_stats() {
        let s = QueryStats::default();
        assert_eq!(s.validation_ops_per_tick(), 0.0);
        assert_eq!(s.comm_per_tick(), 0.0);
        assert_eq!(s.recompute_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = QueryStats {
            ticks: 3,
            valid_ticks: 2,
            recomputations: 1,
            comm_objects: 10,
            ..Default::default()
        };
        let b = QueryStats {
            ticks: 2,
            valid_ticks: 1,
            swaps: 1,
            validation_ops: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.ticks, 5);
        assert_eq!(a.valid_ticks, 3);
        assert_eq!(a.swaps, 1);
        assert_eq!(a.validation_ops, 7);
        assert_eq!(a.comm_objects, 10);
    }

    #[test]
    fn outcome_changed() {
        assert!(!TickOutcome::Valid.changed());
        assert!(TickOutcome::Swap.changed());
        assert!(TickOutcome::LocalRerank.changed());
        assert!(TickOutcome::Recompute.changed());
    }
}

//! Exact continuous MkNN maintenance along linear motion (extension).
//!
//! The paper's demo moves the query continuously but the system validates
//! at discrete timestamps, which can miss short-lived kNN changes between
//! ticks. The influential-set machinery supports something stronger: for a
//! query moving linearly `x(t) = a + t·(b − a)`, the difference of squared
//! distances to two fixed objects
//!
//! ```text
//! f_{p,s}(t) = |x(t) − s|² − |x(t) − p|²
//! ```
//!
//! is *linear* in `t`, so the exact moment a guard object `s` overtakes a
//! result member `p` is a root of a linear function. Because `MIS ⊆ INS`,
//! the first change of the kNN set along the segment is always an INS
//! bisector crossing — scanning the `k·|INS|` pairs yields the exact event
//! sequence, with no sampling error at any speed.
//!
//! [`knn_change_events`] returns every change event along a segment; each
//! swaps exactly one object (the query crosses one order-k Voronoi cell
//! edge at a time, in general position). Degenerate simultaneous
//! crossings are processed in deterministic order.

use insq_geom::Point;
use insq_index::VorTree;
use insq_voronoi::SiteId;

use crate::influential::influential_neighbor_set;
use crate::CoreError;

/// One exact kNN change event along a motion segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnEvent {
    /// Segment parameter in `(0, 1]` at which the change occurs.
    pub t: f64,
    /// The object leaving the kNN set (was the farthest member).
    pub removed: SiteId,
    /// The object entering the kNN set (an influential neighbor).
    pub added: SiteId,
}

/// The exact trace of a linear move: the initial set and every event.
#[derive(Debug, Clone)]
pub struct MotionTrace {
    /// The kNN set at `t = 0`, ascending by distance.
    pub initial: Vec<SiteId>,
    /// Change events, ascending in `t`.
    pub events: Vec<KnnEvent>,
}

impl MotionTrace {
    /// The kNN set after all events up to and including parameter `t`
    /// (sorted by id; distance order is position-dependent).
    pub fn knn_at(&self, t: f64) -> Vec<SiteId> {
        let mut set: Vec<SiteId> = self.initial.clone();
        for e in &self.events {
            if e.t > t {
                break;
            }
            if let Some(slot) = set.iter_mut().find(|s| **s == e.removed) {
                *slot = e.added;
            }
        }
        set.sort_unstable();
        set
    }
}

/// Computes every kNN change event along the segment `a → b`, exactly.
///
/// Events whose crossing parameter rounds into a previous event are
/// processed in sequence (each still swaps one object). The scan costs
/// `O(k · |INS|)` per event plus the initial kNN search.
pub fn knn_change_events(
    index: &VorTree,
    k: usize,
    a: Point,
    b: Point,
) -> Result<MotionTrace, CoreError> {
    if k == 0 {
        return Err(CoreError::BadConfig {
            reason: "k must be at least 1",
        });
    }
    if k > index.len() {
        return Err(CoreError::BadConfig {
            reason: "k exceeds the number of data objects",
        });
    }
    if !(a.is_finite() && b.is_finite()) {
        return Err(CoreError::BadConfig {
            reason: "motion endpoints must be finite",
        });
    }

    let voronoi = index.voronoi();
    let points = voronoi.points();
    let initial: Vec<SiteId> = index.knn(a, k).into_iter().map(|(s, _)| s).collect();
    let mut knn = initial.clone();
    let mut events: Vec<KnnEvent> = Vec::new();
    let mut t_cur = 0.0f64;

    // Defensive cap: each event swaps one cell edge; a segment cannot
    // cross more edges than a generous multiple of the diagram size.
    let max_events = 16 * index.len().max(16);

    while events.len() <= max_events {
        let ins = influential_neighbor_set(voronoi, &knn);
        // Earliest overtaking event strictly after t_cur: for each pair
        // (p ∈ knn, s ∈ ins), f(t) = d²(x(t), s) − d²(x(t), p) is linear;
        // a zero with f decreasing is s overtaking p.
        let mut best: Option<(f64, SiteId, SiteId)> = None;
        for &p in &knn {
            let pp = points[p.idx()];
            // f(t) = f0 + t (f1 − f0) with f evaluated at the endpoints.
            for &s in &ins {
                let sp = points[s.idx()];
                let f0 = a.distance_sq(sp) - a.distance_sq(pp);
                let f1 = b.distance_sq(sp) - b.distance_sq(pp);
                if f1 >= 0.0 || f0 <= f1 {
                    continue; // never negative on [t_cur, 1], or not decreasing
                }
                let t = f0 / (f0 - f1); // f(t) = 0
                if t <= t_cur || t > 1.0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bt, bp, bs)) => t < bt || (t == bt && (s, p) < (bs, bp)),
                };
                if better {
                    best = Some((t, p, s));
                }
            }
        }
        let Some((t, removed, added)) = best else {
            break; // valid for the rest of the segment
        };
        events.push(KnnEvent { t, removed, added });
        let slot = knn
            .iter_mut()
            .find(|s| **s == removed)
            .expect("removed is a member");
        *slot = added;
        t_cur = t;
    }

    Ok(MotionTrace { initial, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_geom::Aabb;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn build_index(n: usize, seed: u64) -> VorTree {
        let mut next = lcg(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        VorTree::build(
            points,
            Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0)),
        )
        .unwrap()
    }

    fn brute(index: &VorTree, q: Point, k: usize) -> Vec<SiteId> {
        let mut v = index.voronoi().knn_brute(q, k);
        v.sort_unstable();
        v
    }

    #[test]
    fn rejects_bad_configs() {
        let idx = build_index(20, 1);
        assert!(knn_change_events(&idx, 0, Point::ORIGIN, Point::new(1.0, 0.0)).is_err());
        assert!(knn_change_events(&idx, 21, Point::ORIGIN, Point::new(1.0, 0.0)).is_err());
        assert!(
            knn_change_events(&idx, 2, Point::new(f64::NAN, 0.0), Point::new(1.0, 0.0)).is_err()
        );
    }

    #[test]
    fn no_events_for_stationary_or_tiny_motion() {
        let idx = build_index(100, 2);
        let a = Point::new(50.0, 50.0);
        let trace = knn_change_events(&idx, 5, a, a).unwrap();
        assert!(trace.events.is_empty());
        assert_eq!(trace.initial.len(), 5);
    }

    #[test]
    fn events_match_brute_force_at_endpoints_and_midpoints() {
        let idx = build_index(200, 7);
        let a = Point::new(10.0, 20.0);
        let b = Point::new(90.0, 80.0);
        let k = 4;
        let trace = knn_change_events(&idx, k, a, b).unwrap();

        // Endpoint correctness.
        assert_eq!(trace.knn_at(0.0), brute(&idx, a, k));
        assert_eq!(trace.knn_at(1.0), brute(&idx, b, k));

        // Between consecutive events the set matches brute force at the
        // interval midpoint.
        let mut boundaries = vec![0.0];
        boundaries.extend(trace.events.iter().map(|e| e.t));
        boundaries.push(1.0);
        for w in boundaries.windows(2) {
            let mid = 0.5 * (w[0] + w[1]);
            let pos = a.lerp(b, mid);
            assert_eq!(
                trace.knn_at(mid),
                brute(&idx, pos, k),
                "mismatch at t={mid}"
            );
        }

        // Events are ordered and each swaps a real member for a non-member.
        for w in trace.events.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
    }

    #[test]
    fn event_parameters_are_exact_bisector_crossings() {
        let idx = build_index(150, 13);
        let a = Point::new(15.0, 55.0);
        let b = Point::new(85.0, 45.0);
        let trace = knn_change_events(&idx, 3, a, b).unwrap();
        assert!(!trace.events.is_empty(), "a long crossing has events");
        for e in &trace.events {
            let x = a.lerp(b, e.t);
            let d_rem = idx.point(e.removed).distance(x);
            let d_add = idx.point(e.added).distance(x);
            assert!(
                (d_rem - d_add).abs() < 1e-6,
                "event at t={} not on the {}/{} bisector: {d_rem} vs {d_add}",
                e.t,
                e.removed,
                e.added
            );
        }
    }

    #[test]
    fn dense_sampling_finds_no_extra_events() {
        // The exact trace must account for every change a fine sampling
        // sees (the converse — sampling missing short-lived changes — is
        // exactly why the exact method exists).
        let idx = build_index(120, 23);
        let a = Point::new(20.0, 30.0);
        let b = Point::new(80.0, 70.0);
        let k = 3;
        let trace = knn_change_events(&idx, k, a, b).unwrap();
        let mut changes_seen = 0;
        let mut prev = brute(&idx, a, k);
        let steps = 2000;
        for i in 1..=steps {
            let t = i as f64 / steps as f64;
            let now = brute(&idx, a.lerp(b, t), k);
            if now != prev {
                changes_seen += 1;
                prev = now;
            }
        }
        assert!(
            trace.events.len() >= changes_seen,
            "exact events {} < sampled changes {}",
            trace.events.len(),
            changes_seen
        );
    }

    #[test]
    fn k1_events_walk_voronoi_cells() {
        // For k = 1 the events are exactly the order-1 Voronoi cell
        // boundaries along the segment; consecutive events swap to a
        // Voronoi neighbor of the previous owner.
        let idx = build_index(80, 31);
        let a = Point::new(5.0, 50.0);
        let b = Point::new(95.0, 50.0);
        let trace = knn_change_events(&idx, 1, a, b).unwrap();
        let v = idx.voronoi();
        let mut owner = trace.initial[0];
        for e in &trace.events {
            assert_eq!(e.removed, owner);
            assert!(
                v.are_neighbors(owner, e.added),
                "1NN handover must cross to a Voronoi neighbor"
            );
            owner = e.added;
        }
    }
}

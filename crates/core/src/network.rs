//! The road-network [`Space`] (paper §IV).
//!
//! Differences from the Euclidean space:
//!
//! * distances are network distances — no constant-time evaluation exists,
//!   so the per-tick validation runs a *restricted* Incremental Network
//!   Expansion confined to the subnetwork formed by the Voronoi cells of
//!   `kNN ∪ I(kNN)` (Theorem 2: if that restricted search returns the
//!   current kNN set, the set is globally valid);
//! * the influential neighbor set comes from the precomputed *network*
//!   Voronoi diagram's adjacency (Theorem 1: `MIS ⊆ INS` holds under
//!   network distance as well);
//! * the restricted probe is served from the NVD, whose neighbor
//!   pointers travel with the response — so missing influential
//!   neighbors are fetched implicitly ([`Space::IMPLICIT_FETCH`])
//!   instead of escalating to a full INE recomputation.
//!
//! The index snapshot is a [`NetworkWorld`] (network + sites + NVD);
//! [`NetInsProcessor`] is the road-network instantiation of the generic
//! [`Processor`].

use std::borrow::Borrow;

use insq_roadnet::ine::{network_knn, network_knn_into};
use insq_roadnet::subnetwork::restricted_knn_into;
use insq_roadnet::{
    DijkstraScratch, NetPosition, NetworkVoronoi, NetworkWorld, RoadNetwork, SiteIdx, SiteMask,
    SiteSet,
};

use crate::processor::Processor;
use crate::space::Space;

/// A road network under shortest-path distance, indexed by a
/// [`NetworkWorld`] (network + site set + network Voronoi diagram).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Network;

/// Per-shard search scratch of the road-network space: the Theorem-2
/// restriction mask plus the Dijkstra expansion state (distance slots
/// and frontier heap). A default scratch is empty; backing storage
/// appears on first use, sized to the bound network.
#[derive(Debug, Clone, Default)]
pub struct NetScratch {
    /// Allowed-site mask of the restricted (Theorem-2) search.
    pub mask: SiteMask,
    /// Dijkstra distance slots + frontier heap.
    pub dij: DijkstraScratch,
}

impl Space for Network {
    type Pos = NetPosition;
    type SiteId = SiteIdx;
    type Index = NetworkWorld;
    type Scratch = NetScratch;

    const NAME: &'static str = "INS-road";
    const IMPLICIT_FETCH: bool = true;
    // Theorem-2 restricted validation: the probe never leaves the
    // `kNN ∪ I(kNN)` cells, the scope is maintained, and the cache
    // holds `R ∪ I(kNN)`.
    const SCOPED_VALIDATION: bool = true;

    fn num_sites(index: &NetworkWorld) -> usize {
        index.sites.len()
    }

    fn ordinal(id: SiteIdx) -> usize {
        id.idx()
    }

    fn global_knn_into(
        index: &NetworkWorld,
        scratch: &mut NetScratch,
        pos: NetPosition,
        m: usize,
        out: &mut Vec<(SiteIdx, f64)>,
    ) -> u64 {
        let st = network_knn_into(&index.net, &index.sites, &mut scratch.dij, pos, m, out);
        st.settled as u64
    }

    fn influential_into(index: &NetworkWorld, ids: &[SiteIdx], out: &mut Vec<SiteIdx>) {
        influential_neighbor_set_net_into(&index.nvd, ids, out)
    }

    fn scoped_knn_into(
        index: &NetworkWorld,
        scratch: &mut NetScratch,
        scope: &[SiteIdx],
        _held: &[SiteIdx],
        pos: NetPosition,
        k: usize,
        out: &mut Vec<(SiteIdx, f64)>,
    ) -> u64 {
        scratch.mask.resize(index.sites.len());
        scratch.mask.set(scope.iter().copied());
        let st = restricted_knn_into(
            &index.net,
            &index.sites,
            &index.nvd,
            &scratch.mask,
            &mut scratch.dij,
            pos,
            k,
            out,
        );
        st.settled as u64
    }

    fn brute_knn(index: &NetworkWorld, pos: NetPosition, k: usize) -> Vec<SiteIdx> {
        network_knn(&index.net, &index.sites, pos, k)
            .into_iter()
            .map(|(s, _)| s)
            .collect()
    }
}

/// The INS moving-kNN processor on a road network — the network
/// instantiation of the generic [`Processor`], bound to a
/// [`NetworkWorld`] snapshot (`&NetworkWorld` for single-threaded use,
/// `Arc<NetworkWorld>` when an `insq-server` fleet owns epoch-versioned
/// worlds).
pub type NetInsProcessor<B> = Processor<Network, B>;

impl<B: Borrow<NetworkWorld>> Processor<Network, B> {
    /// The road network the processor runs on.
    pub fn net(&self) -> &RoadNetwork {
        &self.index().net
    }

    /// The data-object site set the processor is bound to.
    pub fn sites(&self) -> &SiteSet {
        &self.index().sites
    }

    /// The network Voronoi diagram the processor is bound to.
    pub fn nvd(&self) -> &NetworkVoronoi {
        &self.index().nvd
    }

    /// The sites whose cells form the Theorem-2 validation subnetwork
    /// (`kNN ∪ I(kNN)`).
    pub fn subnetwork_sites(&self) -> &[SiteIdx] {
        self.scope()
    }
}

/// The network influential neighbor set: union of NVD neighbor lists of
/// the kNN members, minus the members (Definition 4 on network Voronoi
/// cells).
pub fn influential_neighbor_set_net(nvd: &NetworkVoronoi, knn: &[SiteIdx]) -> Vec<SiteIdx> {
    let mut ins = Vec::with_capacity(knn.len() * 4);
    influential_neighbor_set_net_into(nvd, knn, &mut ins);
    ins
}

/// Allocation-free [`influential_neighbor_set_net`]: writes `I(knn)`
/// into `out` (cleared first).
pub fn influential_neighbor_set_net_into(
    nvd: &NetworkVoronoi,
    knn: &[SiteIdx],
    out: &mut Vec<SiteIdx>,
) {
    out.clear();
    for &s in knn {
        out.extend_from_slice(nvd.neighbors(s));
    }
    out.sort_unstable();
    out.dedup();
    out.retain(|s| !knn.contains(s));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TickOutcome;
    use crate::processor::{InsConfig, MovingKnn};
    use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};
    use insq_roadnet::order_k::knn_sets_equal;
    use insq_roadnet::NetTrajectory;
    use std::sync::Arc;

    fn setup(seed: u64) -> NetworkWorld {
        let net = Arc::new(
            grid_network(
                &GridConfig {
                    cols: 12,
                    rows: 12,
                    ..GridConfig::default()
                },
                seed,
            )
            .unwrap(),
        );
        let sv = random_site_vertices(&net, 30, seed).unwrap();
        let sites = SiteSet::new(&net, sv).unwrap();
        NetworkWorld::build(net, sites)
    }

    #[test]
    fn rejects_bad_configs() {
        let world = setup(1);
        assert!(NetInsProcessor::new(&world, InsConfig::new(0, 1.5)).is_err());
        assert!(NetInsProcessor::new(&world, InsConfig::new(31, 1.5)).is_err());
        assert!(NetInsProcessor::new(&world, InsConfig::new(3, 0.9)).is_err());
        assert!(NetInsProcessor::new(&world, InsConfig::new(3, 1.0)).is_ok());
    }

    #[test]
    fn matches_global_ine_along_tour() {
        let world = setup(42);
        let mut p = NetInsProcessor::new(&world, InsConfig::new(4, 1.6)).unwrap();
        let tour = NetTrajectory::random_tour(&world.net, 8, 42).unwrap();
        let steps = 400;
        for i in 0..=steps {
            let s = tour.length() * i as f64 / steps as f64;
            let pos = tour.position(&world.net, s);
            p.tick(pos);
            let got: Vec<SiteIdx> = p.current_knn();
            let want: Vec<SiteIdx> = network_knn(&world.net, &world.sites, pos, 4)
                .into_iter()
                .map(|(s, _)| s)
                .collect();
            assert!(
                knn_sets_equal(&got, &want),
                "mismatch at step {i}: {got:?} vs {want:?}"
            );
        }
        let s = p.stats();
        assert!(s.valid_ticks > s.ticks / 2, "mostly valid: {s:?}");
        assert!(s.recomputations < s.ticks / 4, "recomputations rare: {s:?}");
    }

    #[test]
    fn communication_far_below_naive() {
        // The LBS-critical metric (paper §I): the INS client contacts the
        // server only on recomputation, while a naive client receives k
        // objects every timestamp.
        let world = setup(7);
        let mut p = NetInsProcessor::new(&world, InsConfig::new(3, 1.6)).unwrap();
        let tour = NetTrajectory::random_tour(&world.net, 6, 9).unwrap();
        let steps = 200u64;
        for i in 0..=steps {
            let pos = tour.position(&world.net, tour.length() * i as f64 / steps as f64);
            p.tick(pos);
        }
        let naive_comm = 3 * (steps + 1);
        let ins_comm = p.stats().comm_objects;
        assert!(
            ins_comm * 2 < naive_comm,
            "INS comm {ins_comm} not well below naive {naive_comm}"
        );
        // And most ticks validate without any recomputation at all.
        assert!(
            p.stats().valid_ticks * 2 > p.stats().ticks,
            "{:?}",
            p.stats()
        );
    }

    #[test]
    fn stationary_stays_valid() {
        let world = setup(3);
        let mut p = NetInsProcessor::new(&world, InsConfig::new(5, 1.6)).unwrap();
        let pos = NetPosition::Vertex(insq_roadnet::VertexId(60));
        p.tick(pos);
        for _ in 0..10 {
            assert_eq!(p.tick(pos), TickOutcome::Valid);
        }
        assert_eq!(p.stats().recomputations, 1);
    }

    #[test]
    fn invalidate_and_rebind_handle_site_updates() {
        let world_a = setup(19);
        // A second site set on the same network: the "after update" world.
        let sv_b = random_site_vertices(&world_a.net, 24, 77).unwrap();
        let sites_b = SiteSet::new(&world_a.net, sv_b).unwrap();
        let world_b = world_a.with_sites(sites_b);

        let mut p = NetInsProcessor::new(&world_a, InsConfig::new(3, 1.6)).unwrap();
        let pos = NetPosition::Vertex(insq_roadnet::VertexId(70));
        p.tick(pos);
        assert_eq!(p.tick(pos), TickOutcome::Valid);

        p.invalidate();
        assert_eq!(p.tick(pos), TickOutcome::Recompute);

        p.rebind(&world_b);
        assert_eq!(p.tick(pos), TickOutcome::Recompute);
        let got = p.current_knn();
        let want: Vec<SiteIdx> = network_knn(&world_b.net, &world_b.sites, pos, 3)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert!(
            knn_sets_equal(&got, &want),
            "results come from the new site set"
        );
        assert_eq!(p.tick(pos), TickOutcome::Valid);
    }

    #[test]
    fn influential_set_excludes_knn() {
        let world = setup(11);
        let mut p = NetInsProcessor::new(&world, InsConfig::new(4, 1.6)).unwrap();
        p.tick(NetPosition::Vertex(insq_roadnet::VertexId(0)));
        let knn = p.current_knn();
        let ins = p.influential_set();
        for s in &knn {
            assert!(!ins.contains(s));
        }
        // The subnetwork mask is exactly kNN ∪ INS.
        let mut expect: Vec<SiteIdx> = knn.iter().copied().chain(ins.iter().copied()).collect();
        expect.sort_unstable();
        let mut got: Vec<SiteIdx> = p.subnetwork_sites().to_vec();
        got.sort_unstable();
        assert_eq!(got, expect);
    }
}

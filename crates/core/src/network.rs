//! The INS moving-kNN processor for road networks (paper §IV).
//!
//! Differences from the Euclidean processor:
//!
//! * distances are network distances — no constant-time evaluation exists,
//!   so the per-tick validation runs a *restricted* Incremental Network
//!   Expansion confined to the subnetwork formed by the Voronoi cells of
//!   `kNN ∪ I(kNN)` (Theorem 2: if that restricted search returns the
//!   current kNN set, the set is globally valid);
//! * the influential neighbor set comes from the precomputed *network*
//!   Voronoi diagram's adjacency (Theorem 1: `MIS ⊆ INS` holds under
//!   network distance as well);
//! * on invalidation, the candidate produced by the restricted search is
//!   re-certified on its own `cand ∪ I(cand)` subnetwork before being
//!   adopted (update cases (i)/(ii)); only when that fails is a full INE
//!   recomputation performed (case (iii)).

use std::borrow::Borrow;

use insq_roadnet::ine::network_knn_with_stats;
use insq_roadnet::order_k::knn_sets_equal;
use insq_roadnet::subnetwork::restricted_knn;
use insq_roadnet::{NetPosition, NetworkVoronoi, RoadNetwork, SiteIdx, SiteMask, SiteSet};

use crate::metrics::{QueryStats, TickOutcome};
use crate::processor::MovingKnn;
use crate::CoreError;

/// Configuration of the network INS processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetInsConfig {
    /// Number of nearest neighbors to maintain (k ≥ 1).
    pub k: usize,
    /// Prefetch ratio ρ ≥ 1 (see the Euclidean processor).
    pub rho: f64,
}

impl NetInsConfig {
    /// A configuration with the given k and ρ.
    pub fn new(k: usize, rho: f64) -> NetInsConfig {
        NetInsConfig { k, rho }
    }

    /// Demo default ρ = 1.6.
    pub fn with_k(k: usize) -> NetInsConfig {
        NetInsConfig { k, rho: 1.6 }
    }

    /// The prefetch count `max(k, ⌊ρk⌋)`.
    pub fn prefetch_count(&self) -> usize {
        ((self.rho * self.k as f64).floor() as usize).max(self.k)
    }
}

/// The INS moving-kNN processor on a road network.
///
/// Like the Euclidean [`crate::InsProcessor`], the processor is generic
/// over how it holds its substrate: `&RoadNetwork`/`&SiteSet`/
/// `&NetworkVoronoi` for single-threaded use, or `Arc`s of the same when
/// an `insq-server` fleet owns epoch-versioned world snapshots.
#[derive(Debug)]
pub struct NetInsProcessor<N, S, V>
where
    N: Borrow<RoadNetwork>,
    S: Borrow<SiteSet>,
    V: Borrow<NetworkVoronoi>,
{
    net: N,
    sites: S,
    nvd: V,
    cfg: NetInsConfig,
    /// Current kNN, ascending by network distance at the last maintenance
    /// point.
    knn: Vec<(SiteIdx, f64)>,
    /// Theorem-2 mask: Voronoi cells of `kNN ∪ I(kNN)`.
    mask: SiteMask,
    /// Client-held objects (communication accounting).
    cached: Vec<bool>,
    cached_count: usize,
    stats: QueryStats,
    initialized: bool,
}

impl<N, S, V> NetInsProcessor<N, S, V>
where
    N: Borrow<RoadNetwork>,
    S: Borrow<SiteSet>,
    V: Borrow<NetworkVoronoi>,
{
    /// Creates a processor over a prebuilt network Voronoi diagram.
    pub fn new(
        net: N,
        sites: S,
        nvd: V,
        cfg: NetInsConfig,
    ) -> Result<NetInsProcessor<N, S, V>, CoreError> {
        if cfg.k == 0 {
            return Err(CoreError::BadConfig {
                reason: "k must be at least 1",
            });
        }
        let n_sites = sites.borrow().len();
        if cfg.k > n_sites {
            return Err(CoreError::BadConfig {
                reason: "k exceeds the number of data objects",
            });
        }
        if !(cfg.rho >= 1.0 && cfg.rho.is_finite()) {
            return Err(CoreError::BadConfig {
                reason: "prefetch ratio rho must be finite and >= 1",
            });
        }
        Ok(NetInsProcessor {
            net,
            sites,
            nvd,
            cfg,
            knn: Vec::new(),
            mask: SiteMask::new(n_sites),
            cached: vec![false; n_sites],
            cached_count: 0,
            stats: QueryStats::default(),
            initialized: false,
        })
    }

    /// The configuration.
    pub fn config(&self) -> NetInsConfig {
        self.cfg
    }

    /// The road network the processor runs on.
    pub fn net(&self) -> &RoadNetwork {
        self.net.borrow()
    }

    /// The data-object site set the processor is bound to.
    pub fn sites(&self) -> &SiteSet {
        self.sites.borrow()
    }

    /// The network Voronoi diagram the processor is bound to.
    pub fn nvd(&self) -> &NetworkVoronoi {
        self.nvd.borrow()
    }

    /// Current kNN with network distances (as of the last tick).
    pub fn current_knn_with_dists(&self) -> &[(SiteIdx, f64)] {
        &self.knn
    }

    /// The influential neighbor set of the current kNN (network Voronoi
    /// adjacency, Definition 4 + Theorem 1).
    pub fn influential_set(&self) -> Vec<SiteIdx> {
        let ids: Vec<SiteIdx> = self.knn.iter().map(|&(s, _)| s).collect();
        influential_neighbor_set_net(self.nvd(), &ids)
    }

    /// The sites whose cells form the Theorem-2 validation subnetwork.
    pub fn subnetwork_sites(&self) -> &[SiteIdx] {
        self.mask.members()
    }

    /// Drops all client-side state, forcing a full recomputation at the
    /// next tick — the client half of a data-object update (paper §III).
    pub fn invalidate(&mut self) {
        self.cached.iter_mut().for_each(|c| *c = false);
        self.cached_count = 0;
        self.knn.clear();
        self.mask.set(std::iter::empty());
        self.initialized = false;
    }

    /// Rebinds the processor to a rebuilt site set / network Voronoi
    /// diagram after data-object updates (the network itself must be
    /// unchanged). Implies [`NetInsProcessor::invalidate`]; statistics are
    /// preserved. Epoch-versioned worlds in `insq-server` call this with
    /// the published `Arc` snapshots.
    pub fn rebind(&mut self, sites: S, nvd: V) {
        let n_sites = sites.borrow().len();
        self.sites = sites;
        self.nvd = nvd;
        self.cached = vec![false; n_sites];
        self.cached_count = 0;
        self.mask = SiteMask::new(n_sites);
        self.knn.clear();
        self.initialized = false;
    }

    /// [`NetInsProcessor::rebind`] including the road network itself —
    /// for worlds whose map can change between epochs (the site set and
    /// NVD must have been built over the new network).
    pub fn rebind_world(&mut self, net: N, sites: S, nvd: V) {
        self.net = net;
        self.rebind(sites, nvd);
    }

    fn fetch(&mut self, sites: &[SiteIdx]) {
        for &s in sites {
            if !self.cached[s.idx()] {
                self.cached[s.idx()] = true;
                self.cached_count += 1;
                self.stats.comm_objects += 1;
            }
        }
    }

    fn reset_cache_to(&mut self, sites: &[SiteIdx]) {
        // Count new objects before swapping the cache contents.
        let newly: u64 = sites.iter().filter(|s| !self.cached[s.idx()]).count() as u64;
        self.cached.iter_mut().for_each(|c| *c = false);
        self.cached_count = 0;
        for &s in sites {
            if !self.cached[s.idx()] {
                self.cached[s.idx()] = true;
                self.cached_count += 1;
            }
        }
        self.stats.comm_objects += newly;
    }

    /// Full recomputation via INE (initial computation / case (iii)).
    fn recompute(&mut self, pos: NetPosition) {
        let m = self.cfg.prefetch_count().min(self.sites().len());
        let (r, st) = network_knn_with_stats(self.net(), self.sites(), pos, m);
        self.stats.search_ops += st.settled as u64;

        let knn: Vec<(SiteIdx, f64)> = r[..self.cfg.k.min(r.len())].to_vec();
        let knn_ids: Vec<SiteIdx> = knn.iter().map(|&(s, _)| s).collect();
        let ins = influential_neighbor_set_net(self.nvd(), &knn_ids);
        self.stats.construction_ops += (knn_ids.len() + ins.len()) as u64;

        // Client cache := R ∪ I(kNN).
        let mut held: Vec<SiteIdx> = r.iter().map(|&(s, _)| s).collect();
        held.extend_from_slice(&ins);
        self.reset_cache_to(&held);

        self.mask
            .set(knn_ids.iter().copied().chain(ins.iter().copied()));
        self.knn = knn;
    }

    /// Certifies a candidate k-set by Theorem 2 on its own subnetwork.
    /// On success, installs it and returns the classified outcome.
    fn try_adopt(&mut self, pos: NetPosition, cand: &[(SiteIdx, f64)]) -> Option<TickOutcome> {
        if cand.len() < self.cfg.k {
            return None;
        }
        let cand_ids: Vec<SiteIdx> = cand.iter().map(|&(s, _)| s).collect();
        let ins = influential_neighbor_set_net(self.nvd(), &cand_ids);
        self.stats.construction_ops += (cand_ids.len() + ins.len()) as u64;

        let mut cand_mask = SiteMask::new(self.sites().len());
        cand_mask.set(cand_ids.iter().copied().chain(ins.iter().copied()));
        let (res, st) = restricted_knn(
            self.net(),
            self.sites(),
            self.nvd(),
            &cand_mask,
            pos,
            self.cfg.k,
        );
        self.stats.search_ops += st.settled as u64;
        let res_ids: Vec<SiteIdx> = res.iter().map(|&(s, _)| s).collect();
        if !knn_sets_equal(&res_ids, &cand_ids) {
            return None;
        }

        // Certified. Account communication for objects not yet held, then
        // classify the outcome.
        let prev_ids: Vec<SiteIdx> = self.knn.iter().map(|&(s, _)| s).collect();
        let was_local = cand_ids.iter().all(|s| self.cached[s.idx()]);
        self.fetch(&cand_ids);
        self.fetch(&ins);
        let shared = cand_ids.iter().filter(|s| prev_ids.contains(s)).count();
        let outcome = if shared + 1 == self.cfg.k && was_local {
            TickOutcome::Swap
        } else if was_local {
            TickOutcome::LocalRerank
        } else {
            // Needed fresh objects: semantically a (partial) recomputation.
            TickOutcome::Recompute
        };
        self.mask = cand_mask;
        self.knn = res;
        Some(outcome)
    }
}

/// The network influential neighbor set: union of NVD neighbor lists of
/// the kNN members, minus the members (Definition 4 on network Voronoi
/// cells).
pub fn influential_neighbor_set_net(nvd: &NetworkVoronoi, knn: &[SiteIdx]) -> Vec<SiteIdx> {
    let mut ins: Vec<SiteIdx> = Vec::with_capacity(knn.len() * 4);
    for &s in knn {
        ins.extend_from_slice(nvd.neighbors(s));
    }
    ins.sort_unstable();
    ins.dedup();
    ins.retain(|s| !knn.contains(s));
    ins
}

impl<N, S, V> MovingKnn<NetPosition, SiteIdx> for NetInsProcessor<N, S, V>
where
    N: Borrow<RoadNetwork>,
    S: Borrow<SiteSet>,
    V: Borrow<NetworkVoronoi>,
{
    fn name(&self) -> &'static str {
        "INS-road"
    }

    fn tick(&mut self, pos: NetPosition) -> TickOutcome {
        if !self.initialized {
            self.recompute(pos);
            self.initialized = true;
            let outcome = TickOutcome::Recompute;
            self.stats.record(outcome);
            return outcome;
        }

        // Theorem-2 validation: restricted INE on the kNN ∪ INS
        // subnetwork must return the current kNN set.
        let (res, st) = restricted_knn(
            self.net(),
            self.sites(),
            self.nvd(),
            &self.mask,
            pos,
            self.cfg.k,
        );
        self.stats.validation_ops += st.settled as u64;
        let res_ids: Vec<SiteIdx> = res.iter().map(|&(s, _)| s).collect();
        let cur_ids: Vec<SiteIdx> = self.knn.iter().map(|&(s, _)| s).collect();

        let outcome = if knn_sets_equal(&res_ids, &cur_ids) {
            // Refresh stored distances for observers.
            self.knn = res;
            TickOutcome::Valid
        } else {
            // The restricted result is the natural candidate (the first
            // object to displace a kNN member is an INS member).
            match self.try_adopt(pos, &res) {
                Some(outcome) => outcome,
                None => {
                    self.recompute(pos);
                    TickOutcome::Recompute
                }
            }
        };
        self.stats.record(outcome);
        outcome
    }

    fn current_knn(&self) -> Vec<SiteIdx> {
        self.knn.iter().map(|&(s, _)| s).collect()
    }

    fn stats(&self) -> &QueryStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = QueryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};
    use insq_roadnet::ine::network_knn;
    use insq_roadnet::NetTrajectory;

    fn setup(seed: u64) -> (RoadNetwork, SiteSet) {
        let net = grid_network(
            &GridConfig {
                cols: 12,
                rows: 12,
                ..GridConfig::default()
            },
            seed,
        )
        .unwrap();
        let sv = random_site_vertices(&net, 30, seed).unwrap();
        let sites = SiteSet::new(&net, sv).unwrap();
        (net, sites)
    }

    #[test]
    fn rejects_bad_configs() {
        let (net, sites) = setup(1);
        let nvd = NetworkVoronoi::build(&net, &sites);
        assert!(NetInsProcessor::new(&net, &sites, &nvd, NetInsConfig::new(0, 1.5)).is_err());
        assert!(NetInsProcessor::new(&net, &sites, &nvd, NetInsConfig::new(31, 1.5)).is_err());
        assert!(NetInsProcessor::new(&net, &sites, &nvd, NetInsConfig::new(3, 0.9)).is_err());
        assert!(NetInsProcessor::new(&net, &sites, &nvd, NetInsConfig::new(3, 1.0)).is_ok());
    }

    #[test]
    fn matches_global_ine_along_tour() {
        let (net, sites) = setup(42);
        let nvd = NetworkVoronoi::build(&net, &sites);
        let mut p = NetInsProcessor::new(&net, &sites, &nvd, NetInsConfig::new(4, 1.6)).unwrap();
        let tour = NetTrajectory::random_tour(&net, 8, 42).unwrap();
        let steps = 400;
        for i in 0..=steps {
            let s = tour.length() * i as f64 / steps as f64;
            let pos = tour.position(&net, s);
            p.tick(pos);
            let got: Vec<SiteIdx> = p.current_knn();
            let want: Vec<SiteIdx> = network_knn(&net, &sites, pos, 4)
                .into_iter()
                .map(|(s, _)| s)
                .collect();
            assert!(
                knn_sets_equal(&got, &want),
                "mismatch at step {i}: {got:?} vs {want:?}"
            );
        }
        let s = p.stats();
        assert!(s.valid_ticks > s.ticks / 2, "mostly valid: {s:?}");
        assert!(s.recomputations < s.ticks / 4, "recomputations rare: {s:?}");
    }

    #[test]
    fn communication_far_below_naive() {
        // The LBS-critical metric (paper §I): the INS client contacts the
        // server only on recomputation, while a naive client receives k
        // objects every timestamp.
        let (net, sites) = setup(7);
        let nvd = NetworkVoronoi::build(&net, &sites);
        let mut p = NetInsProcessor::new(&net, &sites, &nvd, NetInsConfig::new(3, 1.6)).unwrap();
        let tour = NetTrajectory::random_tour(&net, 6, 9).unwrap();
        let steps = 200u64;
        for i in 0..=steps {
            let pos = tour.position(&net, tour.length() * i as f64 / steps as f64);
            p.tick(pos);
        }
        let naive_comm = 3 * (steps + 1);
        let ins_comm = p.stats().comm_objects;
        assert!(
            ins_comm * 2 < naive_comm,
            "INS comm {ins_comm} not well below naive {naive_comm}"
        );
        // And most ticks validate without any recomputation at all.
        assert!(
            p.stats().valid_ticks * 2 > p.stats().ticks,
            "{:?}",
            p.stats()
        );
    }

    #[test]
    fn stationary_stays_valid() {
        let (net, sites) = setup(3);
        let nvd = NetworkVoronoi::build(&net, &sites);
        let mut p = NetInsProcessor::new(&net, &sites, &nvd, NetInsConfig::new(5, 1.6)).unwrap();
        let pos = NetPosition::Vertex(insq_roadnet::VertexId(60));
        p.tick(pos);
        for _ in 0..10 {
            assert_eq!(p.tick(pos), TickOutcome::Valid);
        }
        assert_eq!(p.stats().recomputations, 1);
    }

    #[test]
    fn invalidate_and_rebind_handle_site_updates() {
        let (net, sites_a) = setup(19);
        let nvd_a = NetworkVoronoi::build(&net, &sites_a);
        // A second site set on the same network: the "after update" world.
        let sv_b = insq_roadnet::generators::random_site_vertices(&net, 24, 77).unwrap();
        let sites_b = SiteSet::new(&net, sv_b).unwrap();
        let nvd_b = NetworkVoronoi::build(&net, &sites_b);

        let mut p =
            NetInsProcessor::new(&net, &sites_a, &nvd_a, NetInsConfig::new(3, 1.6)).unwrap();
        let pos = NetPosition::Vertex(insq_roadnet::VertexId(70));
        p.tick(pos);
        assert_eq!(p.tick(pos), TickOutcome::Valid);

        p.invalidate();
        assert_eq!(p.tick(pos), TickOutcome::Recompute);

        p.rebind(&sites_b, &nvd_b);
        assert_eq!(p.tick(pos), TickOutcome::Recompute);
        let got = p.current_knn();
        let want: Vec<SiteIdx> = network_knn(&net, &sites_b, pos, 3)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert!(
            knn_sets_equal(&got, &want),
            "results come from the new site set"
        );
        assert_eq!(p.tick(pos), TickOutcome::Valid);
    }

    #[test]
    fn influential_set_excludes_knn() {
        let (net, sites) = setup(11);
        let nvd = NetworkVoronoi::build(&net, &sites);
        let mut p = NetInsProcessor::new(&net, &sites, &nvd, NetInsConfig::new(4, 1.6)).unwrap();
        p.tick(NetPosition::Vertex(insq_roadnet::VertexId(0)));
        let knn = p.current_knn();
        let ins = p.influential_set();
        for s in &knn {
            assert!(!ins.contains(s));
        }
        // The subnetwork mask is exactly kNN ∪ INS.
        let mut expect: Vec<SiteIdx> = knn.iter().copied().chain(ins.iter().copied()).collect();
        expect.sort_unstable();
        let mut got: Vec<SiteIdx> = p.subnetwork_sites().to_vec();
        got.sort_unstable();
        assert_eq!(got, expect);
    }
}

//! The [`Space`] abstraction: what every INSQ setting has in common.
//!
//! The paper instantiates the INS algorithm twice — 2-D Euclidean space
//! (§III) and road networks (§IV) — and proves the same two facts in
//! both: the minimal influential set is contained in the Voronoi-neighbor
//! influential set (Theorem 1), and a result that survives a probe of
//! its own `kNN ∪ INS` neighborhood is globally valid (Theorem 2 / the
//! §III-A distance scan). Everything else — prefetching, guard caching,
//! the three update cases — is identical.
//!
//! [`Space`] captures exactly that shared surface: a position type, a
//! site-identifier type, an index snapshot, and four operations (global
//! kNN probe, influential-neighbor construction, scoped validation
//! probe, brute-force reference). The single generic
//! [`crate::Processor`] implements the full INS protocol over any
//! `Space`; `insq-server` builds its epoch-versioned worlds and fleet
//! clients over the same trait. Adding a setting means implementing this
//! trait once — the processor, fleet engine, workload generators and
//! conformance suites come for free (see the README's "how to add a
//! space" checklist).
//!
//! Three spaces ship in-tree:
//!
//! | Space | Index | Position | Distance |
//! |---|---|---|---|
//! | [`crate::Euclidean`] | `insq_index::VorTree` | `insq_geom::Point` | L2 |
//! | [`crate::Network`] | `insq_roadnet::NetworkWorld` | `insq_roadnet::NetPosition` | shortest path |
//! | [`crate::WeightedEuclidean`] | `insq_index::WeightedVorTree` | `insq_geom::Point` | per-axis scaled L2 |

use std::fmt::Debug;

use insq_index::{SiteDelta, VorTree, WeightedVorTree};
use insq_roadnet::{NetDelta, NetworkWorld, RoadNetError};
use insq_voronoi::VoronoiError;

/// A query setting the INS algorithm can run in.
///
/// Implementations are zero-sized marker types; every operation receives
/// the index snapshot explicitly, so one snapshot can serve many
/// concurrent queries (the `insq-server` fleet engine shares them via
/// `Arc`).
pub trait Space: Sized + Copy + Send + Sync + 'static {
    /// The query position type ticks are driven with.
    type Pos: Copy + Debug + Send + Sync;
    /// The data-object identifier type of results.
    type SiteId: Copy + Eq + Ord + Debug + Send + Sync + 'static;
    /// The server-side index snapshot queries run against.
    type Index: Send + Sync;
    /// Reusable scratch holding every per-query search transient —
    /// frontier heaps, generation-stamped visited marks and distance
    /// slots, the restricted-search site mask — threaded through all
    /// `*_into` probes so the hot tick path allocates nothing. A default
    /// scratch is empty (backing storage appears on first use and is
    /// sized to the index), so it can be shared per worker shard rather
    /// than per query: `insq_index::VorTreeScratch` for the Euclidean
    /// spaces, [`crate::network::NetScratch`] on road networks.
    type Scratch: Default + Clone + Debug + Send + Sync;

    /// Short human-readable method name ("INS", "INS-road", …).
    const NAME: &'static str;

    /// Whether influential neighbors missing from the client cache are
    /// fetched implicitly during a local update. On road networks the INS
    /// pointers travel with the NVD adjacency, so the restricted
    /// (server-side) probe ships them as a matter of course; in the
    /// Euclidean paper protocol a local update uses held objects only
    /// and anything else escalates to a full recomputation (unless the
    /// `incremental_fetch` extension is enabled per query).
    const IMPLICIT_FETCH: bool = false;

    /// Whether validation probes the stored `kNN ∪ I(kNN)` scope (the
    /// Theorem-2 restricted search on road networks) rather than
    /// re-scanning the held objects (the §III-A scan of Euclidean
    /// spaces). Two per-space behaviors follow from this:
    ///
    /// * **scope maintenance** — scope-probing spaces keep the scope up
    ///   to date across recomputations and adoptions; scan-validating
    ///   spaces skip it (their probes never read it, and
    ///   [`crate::Processor::scope`] stays empty);
    /// * **cache policy** — the §III protocol holds `R ∪ I(R)` so
    ///   case-(ii) local re-ranks can draw on the full prefetch set;
    ///   a scope-probing space confines the cache to `R ∪ I(kNN)`,
    ///   because objects outside the probed cells would be dead
    ///   communication weight.
    ///
    /// A space that keeps the default probe-based [`Space::validate`]
    /// must set this to `true`; spaces that override `validate` with a
    /// scan leave it `false`.
    const SCOPED_VALIDATION: bool = false;

    /// Number of data objects in the snapshot.
    fn num_sites(index: &Self::Index) -> usize;

    /// The dense ordinal of a site id in `0..num_sites` (bitmap caches).
    fn ordinal(id: Self::SiteId) -> usize;

    /// Global kNN probe — the initial computation / update case (iii)
    /// search. Writes the `m` nearest sites ascending by distance (ties
    /// by id) into `out` (cleared first) and returns the
    /// elementary-operation count (index node inspections, settled
    /// vertices, …). All per-query transients live in `scratch`, so in
    /// steady state this touches no allocator.
    fn global_knn_into(
        index: &Self::Index,
        scratch: &mut Self::Scratch,
        pos: Self::Pos,
        m: usize,
        out: &mut Vec<(Self::SiteId, f64)>,
    ) -> u64;

    /// The influential neighbor set `I(ids)` (Definition 4): the union of
    /// the Voronoi neighbor sets of `ids`, minus `ids`, sorted and
    /// deduplicated, written into `out` (cleared first).
    fn influential_into(index: &Self::Index, ids: &[Self::SiteId], out: &mut Vec<Self::SiteId>);

    /// The validation/certification probe: the best `k` candidates
    /// visible from the certified neighborhood of the current result,
    /// written into `out` (cleared first).
    ///
    /// `scope` is the result set united with its influential neighbor
    /// set; `held` is every object the client holds. Euclidean spaces
    /// re-rank `held` by distance (the §III-A scan); road networks run
    /// the Theorem-2 restricted expansion over the Voronoi cells of
    /// `scope`. Candidates come out ascending by distance (ties by id);
    /// the return value is the operation count.
    fn scoped_knn_into(
        index: &Self::Index,
        scratch: &mut Self::Scratch,
        scope: &[Self::SiteId],
        held: &[Self::SiteId],
        pos: Self::Pos,
        k: usize,
        out: &mut Vec<(Self::SiteId, f64)>,
    ) -> u64;

    /// Brute-force kNN — the conformance reference every processor
    /// answer is checked against in the cross-space test suites. Not a
    /// hot path; allocates freely.
    fn brute_knn(index: &Self::Index, pos: Self::Pos, k: usize) -> Vec<Self::SiteId>;

    /// The per-tick validation step (§III-A / Theorem 2): decides
    /// whether `current` is still certified at `pos`. On
    /// [`Verdict::Valid`], `out` holds the current result with distances
    /// refreshed at the new position; on [`Verdict::Invalid`], the
    /// probe's candidate replacement set. Returns the verdict and the
    /// elementary-operation count.
    ///
    /// The default runs [`Space::scoped_knn_into`] and set-compares —
    /// exactly right for road networks, where the restricted expansion
    /// both validates and yields the candidate. Euclidean spaces
    /// override it with the cheaper O(k + |IS|) distance scan (farthest
    /// current member vs nearest guard, ties valid) and fall back to the
    /// ranked probe only on invalidation.
    #[allow(clippy::too_many_arguments)]
    fn validate_into(
        index: &Self::Index,
        scratch: &mut Self::Scratch,
        scope: &[Self::SiteId],
        held: &[Self::SiteId],
        current: &[(Self::SiteId, f64)],
        pos: Self::Pos,
        k: usize,
        out: &mut Vec<(Self::SiteId, f64)>,
    ) -> (Verdict, u64) {
        let ops = Self::scoped_knn_into(index, scratch, scope, held, pos, k, out);
        let same = out.len() == current.len()
            && out
                .iter()
                .all(|&(s, _)| current.iter().any(|&(c, _)| c == s));
        if same {
            (Verdict::Valid, ops)
        } else {
            (Verdict::Invalid, ops)
        }
    }

    // ------------------------------------------------------------------
    // Allocating conveniences over the `*_into` primitives — for tests,
    // oracles and one-shot callers. The processor hot path never uses
    // these.
    // ------------------------------------------------------------------

    /// Allocating [`Space::global_knn_into`] with a throwaway scratch.
    fn global_knn(
        index: &Self::Index,
        pos: Self::Pos,
        m: usize,
    ) -> (Vec<(Self::SiteId, f64)>, u64) {
        let mut scratch = Self::Scratch::default();
        let mut out = Vec::with_capacity(m);
        let ops = Self::global_knn_into(index, &mut scratch, pos, m, &mut out);
        (out, ops)
    }

    /// Allocating [`Space::influential_into`].
    fn influential(index: &Self::Index, ids: &[Self::SiteId]) -> Vec<Self::SiteId> {
        let mut out = Vec::new();
        Self::influential_into(index, ids, &mut out);
        out
    }

    /// Allocating [`Space::scoped_knn_into`].
    fn scoped_knn(
        index: &Self::Index,
        scratch: &mut Self::Scratch,
        scope: &[Self::SiteId],
        held: &[Self::SiteId],
        pos: Self::Pos,
        k: usize,
    ) -> (Vec<(Self::SiteId, f64)>, u64) {
        let mut out = Vec::with_capacity(k);
        let ops = Self::scoped_knn_into(index, scratch, scope, held, pos, k, &mut out);
        (out, ops)
    }

    /// Allocating [`Space::validate_into`], returning the verdict with
    /// its payload.
    #[allow(clippy::too_many_arguments)]
    fn validate(
        index: &Self::Index,
        scratch: &mut Self::Scratch,
        scope: &[Self::SiteId],
        held: &[Self::SiteId],
        current: &[(Self::SiteId, f64)],
        pos: Self::Pos,
        k: usize,
    ) -> (Validated<Self::SiteId>, u64) {
        let mut out = Vec::with_capacity(k);
        let (verdict, ops) =
            Self::validate_into(index, scratch, scope, held, current, pos, k, &mut out);
        match verdict {
            Verdict::Valid => (Validated::Valid(out), ops),
            Verdict::Invalid => (Validated::Invalid(out), ops),
        }
    }
}

/// Outcome of [`Space::validate_into`] — the payload stays in the
/// caller's `out` buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Still certified: `out` holds the current result with distances
    /// refreshed at the new position.
    Valid,
    /// No longer certified: `out` holds the probe's candidate
    /// replacement set (to be certified by the update cases of §III-B).
    Invalid,
}

/// Outcome of [`Space::validate`] (the allocating convenience).
#[derive(Debug, Clone)]
pub enum Validated<Id> {
    /// Still certified: the current result with distances refreshed at
    /// the new position.
    Valid(Vec<(Id, f64)>),
    /// No longer certified: the probe's candidate replacement set (to be
    /// certified by the update cases of §III-B).
    Invalid(Vec<(Id, f64)>),
}

/// An index snapshot that supports **delta epochs**: producing the next
/// epoch's snapshot by patching a copy instead of rebuilding from
/// scratch. `insq_server::World::apply` is generic over this trait.
pub trait DeltaIndex: Sized {
    /// The batched-update type.
    type Delta;
    /// The error type of a rejected delta.
    type Error;

    /// Returns a patched copy of `self`; `self` is never modified, so on
    /// error the current snapshot simply stays live.
    fn apply_delta(&self, delta: &Self::Delta) -> Result<Self, Self::Error>;
}

impl DeltaIndex for VorTree {
    type Delta = SiteDelta;
    type Error = VoronoiError;

    fn apply_delta(&self, delta: &SiteDelta) -> Result<VorTree, VoronoiError> {
        let mut next = self.clone();
        next.apply(delta)?;
        Ok(next)
    }
}

impl DeltaIndex for WeightedVorTree {
    type Delta = SiteDelta;
    type Error = VoronoiError;

    fn apply_delta(&self, delta: &SiteDelta) -> Result<WeightedVorTree, VoronoiError> {
        let mut next = self.clone();
        next.apply(delta)?;
        Ok(next)
    }
}

impl DeltaIndex for NetworkWorld {
    /// The combined delta: site insertions/removals *and* edge re-weights
    /// (traffic). A pure site churn delta converts via
    /// `NetDelta::from(NetSiteDelta)`.
    type Delta = NetDelta;
    type Error = RoadNetError;

    fn apply_delta(&self, delta: &NetDelta) -> Result<NetworkWorld, RoadNetError> {
        NetworkWorld::apply_delta(self, delta)
    }
}

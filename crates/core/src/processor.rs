//! The common interface of every moving-kNN processor.

use crate::metrics::{QueryStats, TickOutcome};

/// A continuous kNN processor driven by position updates.
///
/// `P` is the position type ([`insq_geom::Point`] in the Euclidean plane,
/// [`insq_roadnet::NetPosition`] on road networks) and `Id` the data-object
/// identifier type. The simulation engine in `insq-sim` drives any
/// implementor along a trajectory and harvests its [`QueryStats`].
pub trait MovingKnn<P, Id> {
    /// Short human-readable method name ("INS", "Naive", "OkV", "V*").
    fn name(&self) -> &'static str;

    /// Advances the query object to `pos` and maintains the result,
    /// reporting what had to be done.
    fn tick(&mut self, pos: P) -> TickOutcome;

    /// The current kNN ids, ascending by distance from the last position
    /// (ties broken by id).
    fn current_knn(&self) -> Vec<Id>;

    /// Cumulative statistics since construction or the last
    /// [`MovingKnn::reset_stats`].
    fn stats(&self) -> &QueryStats;

    /// Clears the statistics (keeps query state).
    fn reset_stats(&mut self);
}

//! The generic INS moving-kNN processor and the common processor trait.
//!
//! [`Processor`] implements the full INS protocol of the paper once,
//! generically over a [`Space`] — §III and §IV are the same algorithm
//! with different primitives, and the primitives are exactly what the
//! [`Space`] trait provides. Lifecycle per query:
//!
//! 1. **Initial computation** — retrieve `R`, the `⌊ρk⌋` nearest objects
//!    (`ρ ≥ 1` is the *prefetch ratio*), together with `I(R)`. The top-k
//!    of `R` is the kNN result; everything else held client-side guards
//!    it.
//! 2. **Validation per timestamp** (§III-A / Theorem 2) — a scoped probe
//!    of the result's certified neighborhood (a distance re-rank of the
//!    held objects in Euclidean spaces; the restricted expansion over
//!    the `kNN ∪ INS` Voronoi cells on road networks). While the probe
//!    returns the current result set, the result is provably still the
//!    global kNN.
//! 3. **Update on invalidation** (§III-B) — the probe's candidate set is
//!    certified against *its own* influential neighborhood: case (i) one
//!    swap, case (ii) a local re-rank from held objects, case (iii) full
//!    recomputation — the only case that costs a client↔server round
//!    trip.
//!
//! The processor certifies *every* answer it returns: an answer is
//! adopted only after the influential-set predicate holds for it, so the
//! result equals the brute-force kNN at every tick (the cross-space
//! conformance suite in `insq-server` asserts this for every registered
//! space).

use std::borrow::Borrow;
use std::marker::PhantomData;

use crate::metrics::{QueryStats, TickOutcome};
use crate::space::{Space, Verdict};
use crate::CoreError;

/// A continuous kNN processor driven by position updates.
///
/// `P` is the position type ([`insq_geom::Point`] in the Euclidean plane,
/// [`insq_roadnet::NetPosition`] on road networks) and `Id` the data-object
/// identifier type. The simulation engine in `insq-sim` drives any
/// implementor along a trajectory and harvests its [`QueryStats`].
pub trait MovingKnn<P, Id> {
    /// Short human-readable method name ("INS", "Naive", "OkV", "V*").
    fn name(&self) -> &'static str;

    /// Advances the query object to `pos` and maintains the result,
    /// reporting what had to be done.
    fn tick(&mut self, pos: P) -> TickOutcome;

    /// The current kNN ids, ascending by distance from the last position
    /// (ties broken by id).
    fn current_knn(&self) -> Vec<Id>;

    /// Cumulative statistics since construction or the last
    /// [`MovingKnn::reset_stats`].
    fn stats(&self) -> &QueryStats;

    /// Clears the statistics (keeps query state).
    fn reset_stats(&mut self);
}

/// Configuration of an INS processor (any space).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsConfig {
    /// Number of nearest neighbors to maintain (k ≥ 1).
    pub k: usize,
    /// Prefetch ratio ρ ≥ 1: `⌊ρk⌋` objects are retrieved per
    /// recomputation to trade communication volume against recomputation
    /// frequency (paper §III).
    pub rho: f64,
    /// Extension (off by default, not in the paper): when a local update
    /// needs influential neighbors the client does not hold, fetch just
    /// those objects instead of performing a full recomputation. This
    /// turns the processor into an incremental neighbor-crawler that
    /// almost never pays a full round trip, at the cost of an unbounded
    /// client buffer. The ablation bench quantifies the trade-off.
    /// Spaces with [`Space::IMPLICIT_FETCH`] (road networks) behave this
    /// way regardless.
    pub incremental_fetch: bool,
}

impl InsConfig {
    /// A configuration with the given k and ρ (paper protocol).
    pub fn new(k: usize, rho: f64) -> InsConfig {
        InsConfig {
            k,
            rho,
            incremental_fetch: false,
        }
    }

    /// A configuration with the paper's demo default ρ = 1.6.
    pub fn with_k(k: usize) -> InsConfig {
        Self::new(k, 1.6)
    }

    /// Enables the incremental-fetch extension (see the field docs).
    pub fn incremental(mut self) -> InsConfig {
        self.incremental_fetch = true;
        self
    }

    /// The prefetch count `max(k, ⌊ρk⌋)`.
    pub fn prefetch_count(&self) -> usize {
        ((self.rho * self.k as f64).floor() as usize).max(self.k)
    }
}

/// The INS moving-kNN processor, generic over its [`Space`].
///
/// The processor is also generic over *how* it holds the index: any
/// `B: Borrow<S::Index>` works. Single-threaded callers pass
/// `&S::Index` (the original API); the `insq-server` fleet engine
/// passes `Arc<S::Index>` so queries own their world snapshot and can be
/// rebound to a newly published epoch without lifetime entanglement.
///
/// Use the per-space aliases [`crate::InsProcessor`],
/// [`crate::NetInsProcessor`] and [`crate::WInsProcessor`], or name a
/// space directly: `Processor::<Euclidean, _>::new(&index, cfg)`.
#[derive(Debug, Clone)]
pub struct Processor<S: Space, B: Borrow<S::Index>> {
    index: B,
    cfg: InsConfig,
    /// Current kNN with distances as of the last tick, ascending by
    /// (distance, id).
    knn: Vec<(S::SiteId, f64)>,
    /// The certified neighborhood `kNN ∪ I(kNN)` a scope-probing
    /// validation reads (Theorem 2's subnetwork on road networks);
    /// empty in scan-validating spaces (see
    /// [`Space::SCOPED_VALIDATION`]).
    scope: Vec<S::SiteId>,
    /// Client-side object cache: the prefetch set `R` plus its cached
    /// influential set (`I(R)` or `I(kNN)`, see
    /// [`Space::SCOPED_VALIDATION`]) plus everything fetched since the
    /// last full recomputation.
    /// `cached[ordinal]` mirrors membership of `cached_list` for O(1)
    /// tests.
    cached: Vec<bool>,
    cached_list: Vec<S::SiteId>,
    /// Own search scratch, used only by the standalone
    /// [`MovingKnn::tick`] path. Empty (no backing storage) until that
    /// path runs — fleet engines drive [`Processor::tick_with`] with a
    /// shard-shared scratch instead, so thousands of queries share a
    /// handful of O(index-size) scratch arenas.
    scratch: S::Scratch,
    /// Reusable result buffers: every per-tick transient of the INS
    /// protocol lives in one of these, so in steady state (capacities
    /// grown to the working set) a tick performs zero heap allocations.
    /// Buffers are `mem::take`n around calls that also need `&mut self`
    /// (a swap with an empty vec — never an allocation) and restored
    /// afterwards, preserving their capacity.
    val_buf: Vec<(S::SiteId, f64)>,
    probe_buf: Vec<(S::SiteId, f64)>,
    ids_buf: Vec<S::SiteId>,
    ins_buf: Vec<S::SiteId>,
    missing_buf: Vec<S::SiteId>,
    scope2_buf: Vec<S::SiteId>,
    extended_buf: Vec<S::SiteId>,
    last_pos: Option<S::Pos>,
    stats: QueryStats,
    initialized: bool,
    _space: PhantomData<S>,
}

impl<S: Space, B: Borrow<S::Index>> Processor<S, B> {
    /// Creates a processor; fails on `k = 0`, `k > n`, or `ρ < 1`.
    pub fn new(index: B, cfg: InsConfig) -> Result<Processor<S, B>, CoreError> {
        if cfg.k == 0 {
            return Err(CoreError::BadConfig {
                reason: "k must be at least 1",
            });
        }
        if cfg.k > S::num_sites(index.borrow()) {
            return Err(CoreError::BadConfig {
                reason: "k exceeds the number of data objects",
            });
        }
        if !(cfg.rho >= 1.0 && cfg.rho.is_finite()) {
            return Err(CoreError::BadConfig {
                reason: "prefetch ratio rho must be finite and >= 1",
            });
        }
        let cached = vec![false; S::num_sites(index.borrow())];
        Ok(Processor {
            index,
            cfg,
            knn: Vec::new(),
            scope: Vec::new(),
            cached,
            cached_list: Vec::new(),
            scratch: S::Scratch::default(),
            val_buf: Vec::new(),
            probe_buf: Vec::new(),
            ids_buf: Vec::new(),
            ins_buf: Vec::new(),
            missing_buf: Vec::new(),
            scope2_buf: Vec::new(),
            extended_buf: Vec::new(),
            last_pos: None,
            stats: QueryStats::default(),
            initialized: false,
            _space: PhantomData,
        })
    }

    /// The configuration.
    pub fn config(&self) -> InsConfig {
        self.cfg
    }

    /// The index snapshot the processor is currently bound to.
    pub fn index(&self) -> &S::Index {
        self.index.borrow()
    }

    /// The position of the last processed tick, if any.
    pub fn last_pos(&self) -> Option<S::Pos> {
        self.last_pos
    }

    /// The current kNN with distances from the last position, ascending
    /// by (distance, id).
    pub fn current_knn_with_dists(&self) -> &[(S::SiteId, f64)] {
        &self.knn
    }

    /// The influential neighbor set `I(kNN)` of the current result.
    pub fn influential_set(&self) -> Vec<S::SiteId> {
        let ids: Vec<S::SiteId> = self.knn.iter().map(|&(s, _)| s).collect();
        S::influential(self.index(), &ids)
    }

    /// The certified neighborhood a scope-probing validation reads:
    /// `kNN ∪ I(kNN)` (on road networks, the sites whose Voronoi cells
    /// form the Theorem-2 subnetwork). Empty in spaces that validate by
    /// scan instead (`Space::SCOPED_VALIDATION = false`), whose probes
    /// never read it — use [`Processor::influential_set`] for `I(kNN)`
    /// on demand.
    pub fn scope(&self) -> &[S::SiteId] {
        &self.scope
    }

    /// The guard set used for validation: every held object that is not
    /// a current kNN (the paper's `IS = I(R) ∪ R \ NNk(q)`).
    pub fn guard_set(&self) -> Vec<S::SiteId> {
        self.cached_list
            .iter()
            .copied()
            .filter(|&s| !self.knn.iter().any(|&(m, _)| m == s))
            .collect()
    }

    /// All objects currently held client-side.
    pub fn held_objects(&self) -> &[S::SiteId] {
        &self.cached_list
    }

    /// Drops all client-side state (cache, guards, current result),
    /// forcing a full recomputation at the next [`MovingKnn::tick`].
    ///
    /// Use after any out-of-band event that voids the guards' certificate
    /// — most importantly a data-object update on the server (paper §III:
    /// "If there are data object updates, we also update the kNN set and
    /// the IS"): inserted objects may be nearer than any held guard, and
    /// deleted guards certify nothing.
    pub fn invalidate(&mut self) {
        self.drop_cache();
        self.knn.clear();
        self.scope.clear();
        self.initialized = false;
    }

    /// Rebinds the processor to a rebuilt index snapshot after
    /// data-object updates (the server reconstructs the index; the
    /// client continues the same moving query against the new data set).
    /// Implies [`Processor::invalidate`]. Statistics are preserved so a
    /// run's totals include the update's recomputation cost.
    ///
    /// `insq-server` epoch-versioned worlds call this with the freshly
    /// published `Arc<S::Index>` snapshot; manual single-query code
    /// passes the new `&S::Index` as before. If the new index holds
    /// fewer than `k` objects, subsequent ticks return all of them
    /// (`current_knn` shrinks below `k`) rather than failing.
    pub fn rebind(&mut self, index: B) {
        self.cached = vec![false; S::num_sites(index.borrow())];
        self.index = index;
        self.cached_list.clear();
        self.knn.clear();
        self.scope.clear();
        self.initialized = false;
    }

    fn is_cached(&self, s: S::SiteId) -> bool {
        self.cached[S::ordinal(s)]
    }

    fn fetch(&mut self, sites: &[S::SiteId]) {
        for &s in sites {
            if !self.cached[S::ordinal(s)] {
                self.cached[S::ordinal(s)] = true;
                self.cached_list.push(s);
                self.stats.comm_objects += 1;
            }
        }
    }

    fn drop_cache(&mut self) {
        for &s in &self.cached_list {
            self.cached[S::ordinal(s)] = false;
        }
        self.cached_list.clear();
    }

    /// Replaces the cache contents, counting only genuinely new objects
    /// as communication.
    fn reset_cache_to(&mut self, sites: impl Iterator<Item = S::SiteId> + Clone) {
        let newly = sites.clone().filter(|&s| !self.is_cached(s)).count() as u64;
        self.drop_cache();
        for s in sites {
            if !self.cached[S::ordinal(s)] {
                self.cached[S::ordinal(s)] = true;
                self.cached_list.push(s);
            }
        }
        self.stats.comm_objects += newly;
    }

    /// Full recomputation (update case (iii) / initial computation):
    /// retrieve `R` and its cached influential set, hold both, adopt the
    /// top-k of `R`. Allocation-free in steady state: the probe writes
    /// into reusable buffers and the cache refill stays within capacity.
    fn recompute(&mut self, scratch: &mut S::Scratch, pos: S::Pos) {
        let m = self.cfg.prefetch_count().min(S::num_sites(self.index()));
        let mut r = std::mem::take(&mut self.probe_buf);
        let ops = S::global_knn_into(self.index.borrow(), scratch, pos, m, &mut r);
        self.stats.search_ops += ops;
        let mut r_ids = std::mem::take(&mut self.ids_buf);
        r_ids.clear();
        r_ids.extend(r.iter().map(|&(s, _)| s));

        // A rebind may have installed an index with fewer than k objects;
        // degrade to all of them instead of panicking mid-fleet.
        self.knn.clear();
        self.knn.extend_from_slice(&r[..self.cfg.k.min(r.len())]);

        // Cache and scope policy (see `Space::SCOPED_VALIDATION`):
        // scope-probing spaces hold `R ∪ I(kNN)` and maintain the
        // probe's scope; scan-validating spaces follow the paper's §III
        // protocol (`R ∪ I(R)`) and skip the scope, which their probes
        // never read. Only genuinely new objects cost communication.
        let mut ins = std::mem::take(&mut self.ins_buf);
        if S::SCOPED_VALIDATION {
            // `r` is sorted ascending and the kNN is its prefix, so the
            // kNN ids are exactly the first `knn.len()` entries of
            // `r_ids`.
            let split = self.knn.len();
            S::influential_into(self.index.borrow(), &r_ids[..split], &mut ins);
            self.stats.construction_ops += (split + ins.len()) as u64;
            self.reset_cache_to(r_ids.iter().copied().chain(ins.iter().copied()));
            self.scope.clear();
            self.scope.extend_from_slice(&r_ids[..split]);
            for &s in &ins {
                if !r_ids[..split].contains(&s) {
                    self.scope.push(s);
                }
            }
        } else {
            S::influential_into(self.index.borrow(), &r_ids, &mut ins);
            self.stats.construction_ops += (r_ids.len() + ins.len()) as u64;
            self.reset_cache_to(r_ids.iter().copied().chain(ins.iter().copied()));
            self.scope.clear();
        }
        self.probe_buf = r;
        self.ids_buf = r_ids;
        self.ins_buf = ins;
        self.last_pos = Some(pos);
    }

    /// Certifies the probe's candidate k-set against its own influential
    /// neighborhood. On success, installs it and returns the classified
    /// outcome; `None` means a full recomputation is needed.
    ///
    /// Soundness: the candidate is certified only after (a) `I(cand)` is
    /// entirely held (guarding `MIS(cand) ⊆ I(cand)`, Theorem 1) and (b)
    /// a probe of `cand ∪ I(cand)` returns exactly `cand` (the §III-A
    /// scan / Theorem 2) — so the predicate holding certifies
    /// `cand = NNk(q)` globally.
    fn try_adopt(
        &mut self,
        scratch: &mut S::Scratch,
        pos: S::Pos,
        cand: &[(S::SiteId, f64)],
    ) -> Option<TickOutcome> {
        if cand.len() < self.cfg.k {
            return None;
        }
        let mut cand_ids = std::mem::take(&mut self.ids_buf);
        cand_ids.clear();
        cand_ids.extend(cand.iter().map(|&(s, _)| s));
        let mut ins = std::mem::take(&mut self.ins_buf);
        S::influential_into(self.index.borrow(), &cand_ids, &mut ins);
        self.stats.construction_ops += (cand_ids.len() + ins.len()) as u64;

        let mut missing = std::mem::take(&mut self.missing_buf);
        missing.clear();
        for &s in cand_ids.iter().chain(ins.iter()) {
            if !self.cached[S::ordinal(s)] {
                missing.push(s);
            }
        }
        // Restores the buffers on every exit path so their capacity
        // survives for the next tick.
        macro_rules! bail {
            () => {{
                self.ids_buf = cand_ids;
                self.ins_buf = ins;
                self.missing_buf = missing;
                return None;
            }};
        }
        let fetch_allowed = S::IMPLICIT_FETCH || self.cfg.incremental_fetch;
        if !missing.is_empty() && !fetch_allowed {
            // Paper protocol: local updates use held objects only;
            // anything else is a full recomputation (case (iii)).
            bail!();
        }
        // A candidate member the client did not hold means the update
        // semantically was a (partial) recomputation, not a local repair.
        let was_local = cand_ids.iter().all(|&s| self.cached[S::ordinal(s)]);

        // Certification probe on the candidate's own neighborhood,
        // BEFORE any fetch — a candidate that fails certification must
        // not cost communication (the server ships objects only for
        // adopted results). Missing objects are made visible to the
        // probe through a temporary extension of the held list. When
        // nothing is missing in a Euclidean space the probe is
        // guaranteed to pass — it stays to keep the certified-result
        // invariant explicit and to account the O(k + |IS|) cost of the
        // update cases; on road networks it is the Theorem-2 restricted
        // search over the candidate's cells and genuinely decides.
        let mut scope2 = std::mem::take(&mut self.scope2_buf);
        scope2.clear();
        scope2.extend_from_slice(&cand_ids);
        for &s in &ins {
            if !cand_ids.contains(&s) {
                scope2.push(s);
            }
        }
        let mut res = std::mem::take(&mut self.probe_buf);
        let ops = if missing.is_empty() {
            S::scoped_knn_into(
                self.index.borrow(),
                scratch,
                &scope2,
                &self.cached_list,
                pos,
                self.cfg.k,
                &mut res,
            )
        } else {
            let mut extended = std::mem::take(&mut self.extended_buf);
            extended.clear();
            extended.extend_from_slice(&self.cached_list);
            extended.extend_from_slice(&missing);
            let ops = S::scoped_knn_into(
                self.index.borrow(),
                scratch,
                &scope2,
                &extended,
                pos,
                self.cfg.k,
                &mut res,
            );
            self.extended_buf = extended;
            ops
        };
        self.stats.search_ops += ops;
        if !same_id_set::<S>(&res, &cand_ids) {
            self.scope2_buf = scope2;
            self.probe_buf = res;
            bail!();
        }
        self.fetch(&missing);

        let shared = cand_ids
            .iter()
            .filter(|&&s| self.knn.iter().any(|&(m, _)| m == s))
            .count();
        let outcome = if !was_local {
            TickOutcome::Recompute
        } else if shared + 1 == self.cfg.k {
            TickOutcome::Swap
        } else {
            TickOutcome::LocalRerank
        };
        if S::SCOPED_VALIDATION {
            std::mem::swap(&mut self.scope, &mut scope2);
        }
        std::mem::swap(&mut self.knn, &mut res);
        self.ids_buf = cand_ids;
        self.ins_buf = ins;
        self.missing_buf = missing;
        self.scope2_buf = scope2;
        self.probe_buf = res;
        Some(outcome)
    }
}

/// Whether the candidate list's id set equals `ids` (order-insensitive).
fn same_id_set<S: Space>(cand: &[(S::SiteId, f64)], ids: &[S::SiteId]) -> bool {
    cand.len() == ids.len() && cand.iter().all(|&(s, _)| ids.contains(&s))
}

impl<S: Space, B: Borrow<S::Index>> Processor<S, B> {
    /// Advances the query to `pos` using a caller-provided search
    /// scratch — the fleet hot path. One scratch (sized O(index), not
    /// O(k)) serves any number of processors sequentially, so a sharded
    /// engine keeps one per worker instead of one per query. In steady
    /// state the whole call performs zero heap allocations.
    ///
    /// [`MovingKnn::tick`] is the standalone equivalent driving the
    /// processor's own scratch.
    pub fn tick_with(&mut self, scratch: &mut S::Scratch, pos: S::Pos) -> TickOutcome {
        if !self.initialized {
            self.recompute(scratch, pos);
            self.initialized = true;
            let outcome = TickOutcome::Recompute;
            self.stats.record(outcome);
            return outcome;
        }
        self.last_pos = Some(pos);

        // Validation of the certified neighborhood (§III-A scan /
        // Theorem 2 restricted search). The probe writes into the
        // reusable `val_buf`, taken locally so `try_adopt` can borrow
        // `self` mutably alongside it.
        let mut val = std::mem::take(&mut self.val_buf);
        let (verdict, ops) = S::validate_into(
            self.index.borrow(),
            scratch,
            &self.scope,
            &self.cached_list,
            &self.knn,
            pos,
            self.cfg.k,
            &mut val,
        );
        self.stats.validation_ops += ops;
        let outcome = match verdict {
            Verdict::Valid => {
                // Refresh stored distances for observers.
                std::mem::swap(&mut self.knn, &mut val);
                TickOutcome::Valid
            }
            // The probe's result is the natural candidate (the first
            // object to displace a kNN member is an INS member).
            Verdict::Invalid => match self.try_adopt(scratch, pos, &val) {
                Some(outcome) => outcome,
                None => {
                    self.recompute(scratch, pos);
                    TickOutcome::Recompute
                }
            },
        };
        self.val_buf = val;
        self.stats.record(outcome);
        outcome
    }
}

impl<S: Space, B: Borrow<S::Index>> MovingKnn<S::Pos, S::SiteId> for Processor<S, B> {
    fn name(&self) -> &'static str {
        S::NAME
    }

    fn tick(&mut self, pos: S::Pos) -> TickOutcome {
        // The own scratch is swapped out for the duration of the tick
        // (a pointer swap with an empty default, not an allocation).
        let mut scratch = std::mem::take(&mut self.scratch);
        let outcome = self.tick_with(&mut scratch, pos);
        self.scratch = scratch;
        outcome
    }

    fn current_knn(&self) -> Vec<S::SiteId> {
        self.knn.iter().map(|&(s, _)| s).collect()
    }

    fn stats(&self) -> &QueryStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = QueryStats::default();
    }
}

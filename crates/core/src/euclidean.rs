//! The INS moving-kNN processor for 2-D Euclidean space (paper §III).
//!
//! Lifecycle per query:
//!
//! 1. **Initial computation** — retrieve `R`, the `⌊ρk⌋` nearest objects
//!    (`ρ ≥ 1` is the *prefetch ratio*), together with `I(R)` from the
//!    VoR-tree. The top-k of `R` is the kNN result; everything else held
//!    client-side guards it.
//! 2. **Validation per timestamp** — a linear scan (paper §III-A): the
//!    farthest current kNN (`r.delete`) vs the nearest guard object
//!    (`r.candidate`). While the former is not farther, the result is
//!    provably still the global kNN (the guard set contains `I(kNN) ⊇
//!    MIS(kNN)`).
//! 3. **Update on invalidation** (paper §III-B) — case (i): the query
//!    entered an adjacent order-k cell and one swap repairs the result;
//!    case (ii): the new kNN can still be assembled from held objects;
//!    case (iii): full recomputation of `R` and `I(R)` — the only case
//!    that costs a client↔server round trip.
//!
//! The processor certifies *every* answer it returns: an answer is adopted
//! only after the influential-set predicate holds for it, so the result
//! equals the brute-force kNN at every tick (integration tests assert
//! this).

use std::borrow::Borrow;

use insq_geom::{Circle, ConvexPolygon, Point};
use insq_index::VorTree;
use insq_voronoi::{order_k_cell, SiteId};

use crate::influential::{influential_neighbor_set, validate_by_distance};
use crate::metrics::{QueryStats, TickOutcome};
use crate::processor::MovingKnn;
use crate::CoreError;

/// Configuration of the Euclidean INS processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsConfig {
    /// Number of nearest neighbors to maintain (k ≥ 1).
    pub k: usize,
    /// Prefetch ratio ρ ≥ 1: `⌊ρk⌋` objects are retrieved per
    /// recomputation to trade communication volume against recomputation
    /// frequency (paper §III).
    pub rho: f64,
    /// Extension (off by default, not in the paper): when a local update
    /// needs influential neighbors the client does not hold, fetch just
    /// those objects instead of performing a full recomputation. This
    /// turns the processor into an incremental neighbor-crawler that
    /// almost never pays a full round trip, at the cost of an unbounded
    /// client buffer. The ablation bench quantifies the trade-off.
    pub incremental_fetch: bool,
}

impl InsConfig {
    /// A configuration with the given k and ρ (paper protocol).
    pub fn new(k: usize, rho: f64) -> InsConfig {
        InsConfig {
            k,
            rho,
            incremental_fetch: false,
        }
    }

    /// A configuration with the paper's demo default ρ = 1.6.
    pub fn with_k(k: usize) -> InsConfig {
        Self::new(k, 1.6)
    }

    /// Enables the incremental-fetch extension (see the field docs).
    pub fn incremental(mut self) -> InsConfig {
        self.incremental_fetch = true;
        self
    }

    /// The prefetch count `max(k, ⌊ρk⌋)`.
    pub fn prefetch_count(&self) -> usize {
        ((self.rho * self.k as f64).floor() as usize).max(self.k)
    }
}

/// The INS moving-kNN processor over a [`VorTree`].
///
/// The processor is generic over *how* it holds the index: any
/// `B: Borrow<VorTree>` works. Single-threaded callers pass `&VorTree`
/// (the original API); the `insq-server` fleet engine passes
/// `Arc<VorTree>` so queries own their world snapshot and can be rebound
/// to a newly published epoch without lifetime entanglement.
#[derive(Debug, Clone)]
pub struct InsProcessor<B: Borrow<VorTree>> {
    index: B,
    cfg: InsConfig,
    /// Last processed query position.
    q: Point,
    /// Current kNN, ascending by distance from the last position.
    knn: Vec<SiteId>,
    /// Client-side object cache: `R ∪ I(R)` plus everything fetched since
    /// the last full recomputation. `cached[s]` mirrors membership of
    /// `cached_list` for O(1) tests.
    cached: Vec<bool>,
    cached_list: Vec<SiteId>,
    stats: QueryStats,
    initialized: bool,
}

impl<B: Borrow<VorTree>> InsProcessor<B> {
    /// Creates a processor; fails on `k = 0`, `k > n`, or `ρ < 1`.
    pub fn new(index: B, cfg: InsConfig) -> Result<InsProcessor<B>, CoreError> {
        if cfg.k == 0 {
            return Err(CoreError::BadConfig {
                reason: "k must be at least 1",
            });
        }
        if cfg.k > index.borrow().len() {
            return Err(CoreError::BadConfig {
                reason: "k exceeds the number of data objects",
            });
        }
        if !(cfg.rho >= 1.0 && cfg.rho.is_finite()) {
            return Err(CoreError::BadConfig {
                reason: "prefetch ratio rho must be finite and >= 1",
            });
        }
        let cached = vec![false; index.borrow().len()];
        Ok(InsProcessor {
            index,
            cfg,
            q: Point::ORIGIN,
            knn: Vec::new(),
            cached,
            cached_list: Vec::new(),
            stats: QueryStats::default(),
            initialized: false,
        })
    }

    /// The configuration.
    pub fn config(&self) -> InsConfig {
        self.cfg
    }

    /// The index the processor is currently bound to.
    pub fn index(&self) -> &VorTree {
        self.index.borrow()
    }

    /// The current kNN with distances from the last position, ascending.
    pub fn current_knn_with_dists(&self) -> Vec<(SiteId, f64)> {
        self.knn
            .iter()
            .map(|&s| (s, self.index().point(s).distance(self.q)))
            .collect()
    }

    /// The influential neighbor set `I(kNN)` of the current result.
    pub fn influential_set(&self) -> Vec<SiteId> {
        influential_neighbor_set(self.index().voronoi(), &self.knn)
    }

    /// The guard set used for validation: every held object that is not a
    /// current kNN (the paper's `IS = I(R) ∪ R \ NNk(q)`).
    pub fn guard_set(&self) -> Vec<SiteId> {
        self.cached_list
            .iter()
            .copied()
            .filter(|s| !self.knn.contains(s))
            .collect()
    }

    /// All objects currently held client-side.
    pub fn held_objects(&self) -> &[SiteId] {
        &self.cached_list
    }

    /// The implicit safe region of the current result — the order-k
    /// Voronoi cell `V^k(kNN)`, materialised by clipping against the INS
    /// (exact, because `MIS ⊆ INS`). This is the cyan polygon of the
    /// demo's 2D-plane mode; the INS algorithm itself never constructs it.
    pub fn safe_region(&self) -> ConvexPolygon {
        let voronoi = self.index().voronoi();
        let ins = self.influential_set();
        order_k_cell(voronoi.points(), &self.knn, &ins, &voronoi.bounds())
    }

    /// The demo's two validation circles around the last position: green
    /// through the farthest kNN (must enclose all kNN), red through the
    /// nearest guard (must exclude all guards). The result is valid while
    /// the green circle is inside the red one.
    pub fn validation_circles(&self) -> Option<(Circle, Circle)> {
        let knn_far = self
            .knn
            .iter()
            .map(|&s| self.index().point(s).distance(self.q))
            .fold(f64::NEG_INFINITY, f64::max);
        let guard = self.guard_set();
        let guard_near = guard
            .iter()
            .map(|&s| self.index().point(s).distance(self.q))
            .fold(f64::INFINITY, f64::min);
        if !knn_far.is_finite() || !guard_near.is_finite() {
            return None;
        }
        Some((
            Circle::new(self.q, knn_far),
            Circle::new(self.q, guard_near),
        ))
    }

    /// Drops all client-side state (cache, guards, current result),
    /// forcing a full recomputation at the next [`MovingKnn::tick`].
    ///
    /// Use after any out-of-band event that voids the guards' certificate
    /// — most importantly a data-object update on the server (paper §III:
    /// "If there are data object updates, we also update the kNN set and
    /// the IS"): inserted objects may be nearer than any held guard, and
    /// deleted guards certify nothing.
    pub fn invalidate(&mut self) {
        self.drop_cache();
        self.knn.clear();
        self.initialized = false;
    }

    /// Rebinds the processor to a rebuilt index after data-object updates
    /// (the server reconstructs the Voronoi diagram and VoR-tree; the
    /// client continues the same moving query against the new data set).
    /// Implies [`InsProcessor::invalidate`]. Statistics are preserved so a
    /// run's totals include the update's recomputation cost.
    ///
    /// `insq-server` epoch-versioned worlds call this with the freshly
    /// published `Arc<VorTree>` snapshot; manual single-query code passes
    /// the new `&VorTree` as before. If the new index holds fewer than
    /// `k` objects, subsequent ticks return all of them (`current_knn`
    /// shrinks below `k`) rather than failing.
    pub fn rebind(&mut self, index: B) {
        self.cached = vec![false; index.borrow().len()];
        self.index = index;
        self.cached_list.clear();
        self.knn.clear();
        self.initialized = false;
    }

    fn fetch(&mut self, sites: &[SiteId]) {
        for &s in sites {
            if !self.cached[s.idx()] {
                self.cached[s.idx()] = true;
                self.cached_list.push(s);
                self.stats.comm_objects += 1;
            }
        }
    }

    fn drop_cache(&mut self) {
        for &s in &self.cached_list {
            self.cached[s.idx()] = false;
        }
        self.cached_list.clear();
    }

    /// Full recomputation (update case (iii) / initial computation).
    fn recompute(&mut self, q: Point) {
        let m = self.cfg.prefetch_count().min(self.index().len());
        let r = self.index().knn(q, m);
        self.stats.search_ops += m as u64;
        let r_ids: Vec<SiteId> = r.iter().map(|&(s, _)| s).collect();
        let ins_r = influential_neighbor_set(self.index().voronoi(), &r_ids);
        self.stats.construction_ops += (r_ids.len() + ins_r.len()) as u64;

        // Replace the client cache by R ∪ I(R); only genuinely new objects
        // cost communication.
        let mut newly = 0u64;
        let mut next_list = Vec::with_capacity(r_ids.len() + ins_r.len());
        for &s in r_ids.iter().chain(ins_r.iter()) {
            if !self.cached[s.idx()] {
                newly += 1;
            }
            next_list.push(s);
        }
        self.drop_cache();
        for &s in &next_list {
            if !self.cached[s.idx()] {
                self.cached[s.idx()] = true;
                self.cached_list.push(s);
            }
        }
        self.stats.comm_objects += newly;

        // A rebind may have installed an index with fewer than k objects;
        // degrade to all of them (mirrors the network processor) instead
        // of panicking mid-fleet.
        self.knn = r_ids[..self.cfg.k.min(r_ids.len())].to_vec();
        self.q = q;
    }

    /// Attempts a local repair from held objects (update cases (i)/(ii)).
    /// Returns the outcome, or `None` when a full recomputation is needed.
    ///
    /// Soundness: the candidate is the top-k of the held objects, so every
    /// held non-member is farther than the candidate's k-th member by
    /// construction. If additionally `I(cand)` is entirely held, the guard
    /// set contains `I(cand) ⊇ MIS(cand)`, and the MIS constraints alone
    /// carve out exactly the order-k Voronoi cell `V^k(cand)` (redundant
    /// bisector constraints do not change a convex intersection) — so the
    /// predicate holding certifies `cand = NNk(q)` globally.
    fn try_local_update(&mut self, q: Point) -> Option<TickOutcome> {
        // Re-rank the held objects at the new position (case (i) is the
        // special case where this changes exactly one member).
        let mut ranked: Vec<(SiteId, f64)> = self
            .cached_list
            .iter()
            .map(|&s| (s, self.index().point(s).distance_sq(q)))
            .collect();
        self.stats.search_ops += ranked.len() as u64;
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let cand: Vec<SiteId> = ranked[..self.cfg.k.min(ranked.len())]
            .iter()
            .map(|&(s, _)| s)
            .collect();
        if cand.len() < self.cfg.k {
            return None;
        }

        // The candidate can only be certified against its own INS.
        let ins_cand = influential_neighbor_set(self.index().voronoi(), &cand);
        self.stats.construction_ops += (cand.len() + ins_cand.len()) as u64;
        let missing: Vec<SiteId> = ins_cand
            .iter()
            .copied()
            .filter(|s| !self.cached[s.idx()])
            .collect();
        if !missing.is_empty() {
            if !self.cfg.incremental_fetch {
                // Paper protocol: local updates use held objects only;
                // anything else is a full recomputation (case (iii)).
                return None;
            }
            // Extension: fetch exactly the missing influential neighbors
            // (their coordinates travel with the VoR-tree neighbor
            // pointers) and re-certify below.
            self.fetch(&missing);
        }

        // Certification scan (see the soundness note above). When nothing
        // was fetched this is guaranteed to pass — the scan stays to keep
        // the certified-result invariant explicit and to account the
        // paper's O(k + |IS|) validation cost of the update cases.
        let guard: Vec<SiteId> = self
            .cached_list
            .iter()
            .copied()
            .filter(|s| !cand.contains(s))
            .collect();
        let val = validate_by_distance(self.index().voronoi().points(), q, &cand, &guard);
        self.stats.validation_ops += val.ops;
        if !val.valid {
            return None;
        }

        let shared = cand.iter().filter(|s| self.knn.contains(s)).count();
        let outcome = if shared + 1 == self.cfg.k {
            TickOutcome::Swap
        } else {
            TickOutcome::LocalRerank
        };
        self.knn = cand;
        self.q = q;
        Some(outcome)
    }
}

impl<B: Borrow<VorTree>> MovingKnn<Point, SiteId> for InsProcessor<B> {
    fn name(&self) -> &'static str {
        "INS"
    }

    fn tick(&mut self, pos: Point) -> TickOutcome {
        if !self.initialized {
            self.recompute(pos);
            self.initialized = true;
            let outcome = TickOutcome::Recompute;
            self.stats.record(outcome);
            return outcome;
        }

        // §III-A validation scan.
        self.q = pos;
        let guard = self.guard_set();
        let val = validate_by_distance(self.index().voronoi().points(), pos, &self.knn, &guard);
        self.stats.validation_ops += val.ops;
        let outcome = if val.valid {
            TickOutcome::Valid
        } else {
            match self.try_local_update(pos) {
                Some(outcome) => outcome,
                None => {
                    self.recompute(pos);
                    TickOutcome::Recompute
                }
            }
        };
        self.stats.record(outcome);
        outcome
    }

    fn current_knn(&self) -> Vec<SiteId> {
        let mut ids: Vec<(SiteId, f64)> = self.current_knn_with_dists();
        ids.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        ids.into_iter().map(|(s, _)| s).collect()
    }

    fn stats(&self) -> &QueryStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = QueryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_geom::Aabb;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn build_index(n: usize, seed: u64) -> VorTree {
        let mut next = lcg(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        VorTree::build(
            points,
            Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0)),
        )
        .unwrap()
    }

    fn brute_knn(index: &VorTree, q: Point, k: usize) -> Vec<SiteId> {
        index.voronoi().knn_brute(q, k)
    }

    #[test]
    fn rejects_bad_configs() {
        let idx = build_index(20, 1);
        assert!(InsProcessor::new(&idx, InsConfig::new(0, 1.5)).is_err());
        assert!(InsProcessor::new(&idx, InsConfig::new(21, 1.5)).is_err());
        assert!(InsProcessor::new(&idx, InsConfig::new(3, 0.5)).is_err());
        assert!(InsProcessor::new(&idx, InsConfig::new(3, f64::NAN)).is_err());
        assert!(InsProcessor::new(&idx, InsConfig::new(3, 1.0)).is_ok());
    }

    #[test]
    fn prefetch_count_floor() {
        assert_eq!(InsConfig::new(5, 1.6).prefetch_count(), 8);
        assert_eq!(InsConfig::new(4, 1.0).prefetch_count(), 4);
        assert_eq!(InsConfig::new(3, 2.5).prefetch_count(), 7);
    }

    #[test]
    fn matches_brute_force_along_walk() {
        let idx = build_index(300, 42);
        let mut p = InsProcessor::new(&idx, InsConfig::new(5, 1.6)).unwrap();
        let mut next = lcg(7);
        // A random-waypoint walk with small steps.
        let mut pos = Point::new(50.0, 50.0);
        let mut target = Point::new(next() * 100.0, next() * 100.0);
        for _ in 0..600 {
            if pos.distance(target) < 1.0 {
                target = Point::new(next() * 100.0, next() * 100.0);
            }
            let dir = (target - pos)
                .normalized()
                .unwrap_or(insq_geom::Vector::ZERO);
            pos += dir * 0.8;
            p.tick(pos);
            let mut got = p.current_knn();
            got.sort_unstable();
            let mut want = brute_knn(&idx, pos, 5);
            want.sort_unstable();
            assert_eq!(got, want, "kNN mismatch at {pos:?}");
        }
        // The whole point of INS: recomputations must be rare on a smooth
        // trajectory.
        let s = p.stats();
        assert!(s.valid_ticks > s.ticks / 2, "{s:?}");
        assert!(s.recomputations < s.ticks / 5, "{s:?}");
    }

    #[test]
    fn teleporting_query_forces_recompute() {
        let idx = build_index(200, 5);
        let mut p = InsProcessor::new(&idx, InsConfig::new(3, 1.6)).unwrap();
        p.tick(Point::new(10.0, 10.0));
        let outcome = p.tick(Point::new(90.0, 90.0));
        assert_eq!(outcome, TickOutcome::Recompute);
        let mut got = p.current_knn();
        got.sort_unstable();
        let mut want = brute_knn(&idx, Point::new(90.0, 90.0), 3);
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn stationary_query_stays_valid() {
        let idx = build_index(100, 9);
        let mut p = InsProcessor::new(&idx, InsConfig::new(4, 1.6)).unwrap();
        let q = Point::new(40.0, 60.0);
        p.tick(q);
        for _ in 0..10 {
            assert_eq!(p.tick(q), TickOutcome::Valid);
        }
        assert_eq!(p.stats().valid_ticks, 10);
        assert_eq!(p.stats().recomputations, 1); // only the initial one
    }

    #[test]
    fn guard_set_and_ins_relationship() {
        let idx = build_index(150, 13);
        let mut p = InsProcessor::new(&idx, InsConfig::new(4, 2.0)).unwrap();
        p.tick(Point::new(50.0, 50.0));
        let ins = p.influential_set();
        let guard = p.guard_set();
        // Every INS member is held as a guard after a recompute.
        for s in &ins {
            assert!(guard.contains(s), "INS member {s} must be guarded");
        }
        // No kNN member is in either set.
        for s in p.current_knn() {
            assert!(!ins.contains(&s));
            assert!(!guard.contains(&s));
        }
    }

    #[test]
    fn safe_region_contains_query_and_characterizes_knn() {
        let idx = build_index(80, 21);
        let mut p = InsProcessor::new(&idx, InsConfig::new(3, 1.6)).unwrap();
        let q = Point::new(55.0, 45.0);
        p.tick(q);
        let region = p.safe_region();
        assert!(region.contains(q), "query inside its own safe region");
        // Points inside the region share the kNN set.
        let mut knn_sorted = p.current_knn();
        knn_sorted.sort_unstable();
        if let Some(c) = region.centroid() {
            let mut at_centroid = brute_knn(&idx, c, 3);
            at_centroid.sort_unstable();
            assert_eq!(at_centroid, knn_sorted);
        }
    }

    #[test]
    fn validation_circles_nested_while_valid() {
        let idx = build_index(120, 33);
        let mut p = InsProcessor::new(&idx, InsConfig::new(5, 1.6)).unwrap();
        let q = Point::new(30.0, 70.0);
        p.tick(q);
        let (green, red) = p.validation_circles().unwrap();
        assert!(green.radius <= red.radius, "valid state: green inside red");
        assert_eq!(green.center, q);
        assert_eq!(red.center, q);
    }

    #[test]
    fn rho_one_still_correct() {
        let idx = build_index(100, 77);
        let mut p = InsProcessor::new(&idx, InsConfig::new(2, 1.0)).unwrap();
        let mut next = lcg(3);
        for _ in 0..100 {
            let q = Point::new(next() * 100.0, next() * 100.0);
            p.tick(q);
            let mut got = p.current_knn();
            got.sort_unstable();
            let mut want = brute_knn(&idx, q, 2);
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn invalidate_forces_recompute_and_stays_correct() {
        let idx = build_index(120, 3);
        let mut p = InsProcessor::new(&idx, InsConfig::new(4, 1.6)).unwrap();
        let q = Point::new(50.0, 50.0);
        p.tick(q);
        assert_eq!(p.tick(q), TickOutcome::Valid);
        p.invalidate();
        assert!(p.held_objects().is_empty());
        assert_eq!(p.tick(q), TickOutcome::Recompute);
        let mut got = p.current_knn();
        got.sort_unstable();
        let mut want = brute_knn(&idx, q, 4);
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn rebind_switches_data_sets() {
        // Two different data sets model a server-side object update; the
        // same moving query continues across the rebind.
        let idx_a = build_index(100, 7);
        let idx_b = build_index(140, 8);
        let mut p = InsProcessor::new(&idx_a, InsConfig::new(3, 1.6)).unwrap();
        let q = Point::new(40.0, 60.0);
        p.tick(q);
        let before_recomputes = p.stats().recomputations;
        p.rebind(&idx_b);
        assert_eq!(p.tick(q), TickOutcome::Recompute);
        assert_eq!(p.stats().recomputations, before_recomputes + 1);
        let mut got = p.current_knn();
        got.sort_unstable();
        let mut want = idx_b.voronoi().knn_brute(q, 3);
        want.sort_unstable();
        assert_eq!(got, want, "results come from the new data set");
        // Subsequent ticks validate against the new guards.
        assert_eq!(p.tick(q), TickOutcome::Valid);
    }

    #[test]
    fn rebind_to_smaller_than_k_index_degrades_gracefully() {
        // A published update may shrink the data set below k (mass POI
        // deletions). The query must keep answering with everything that
        // is left, not panic.
        let idx_a = build_index(100, 7);
        let idx_b = build_index(3, 8);
        let mut p = InsProcessor::new(&idx_a, InsConfig::new(5, 1.6)).unwrap();
        let q = Point::new(40.0, 60.0);
        p.tick(q);
        assert_eq!(p.current_knn().len(), 5);
        p.rebind(&idx_b);
        p.tick(q);
        let mut got = p.current_knn();
        got.sort_unstable();
        let mut want = idx_b.voronoi().knn_brute(q, 3);
        want.sort_unstable();
        assert_eq!(got, want, "all remaining objects, exactly");
        assert_eq!(p.tick(q), TickOutcome::Valid);
    }

    #[test]
    fn k_equals_n_never_invalidates() {
        let idx = build_index(10, 2);
        let mut p = InsProcessor::new(&idx, InsConfig::new(10, 1.0)).unwrap();
        let mut next = lcg(11);
        p.tick(Point::new(0.0, 0.0));
        for _ in 0..20 {
            let q = Point::new(next() * 100.0, next() * 100.0);
            let outcome = p.tick(q);
            // All objects are the kNN: the guard set is empty, so the
            // result can never be invalidated.
            assert_eq!(outcome, TickOutcome::Valid);
        }
    }
}

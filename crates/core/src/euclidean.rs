//! The 2-D Euclidean [`Space`] (paper §III).
//!
//! The index is a [`VorTree`]; the validation probe is the §III-A
//! distance scan, realised as a re-rank of the held objects: the current
//! result is valid exactly while the top-k of `R ∪ I(R)` (by distance,
//! ties by id) is still the current kNN set — equivalently, while the
//! farthest current kNN (`r.delete`) is not farther than the nearest
//! guard object (`r.candidate`).
//!
//! [`InsProcessor`] is the Euclidean instantiation of the generic
//! [`Processor`]; the Euclidean-only observers of the demo (safe-region
//! polygon, validation circles) live in an inherent impl here.

use std::borrow::Borrow;

use insq_geom::{Circle, ConvexPolygon, Point};
use insq_index::{VorTree, VorTreeScratch};
use insq_voronoi::{order_k_cell, SiteId};

use crate::influential::influential_neighbor_set_into;
use crate::processor::{MovingKnn, Processor};
use crate::space::{Space, Verdict};

/// The 2-D Euclidean plane under L2, indexed by a [`VorTree`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Space for Euclidean {
    type Pos = Point;
    type SiteId = SiteId;
    type Index = VorTree;
    type Scratch = VorTreeScratch;

    const NAME: &'static str = "INS";

    fn num_sites(index: &VorTree) -> usize {
        index.len()
    }

    fn ordinal(id: SiteId) -> usize {
        id.idx()
    }

    fn global_knn_into(
        index: &VorTree,
        scratch: &mut VorTreeScratch,
        pos: Point,
        m: usize,
        out: &mut Vec<(SiteId, f64)>,
    ) -> u64 {
        index.knn_into(scratch, pos, m, out);
        out.len() as u64
    }

    fn influential_into(index: &VorTree, ids: &[SiteId], out: &mut Vec<SiteId>) {
        influential_neighbor_set_into(index.voronoi(), ids, out)
    }

    fn scoped_knn_into(
        index: &VorTree,
        _scratch: &mut VorTreeScratch,
        _scope: &[SiteId],
        held: &[SiteId],
        pos: Point,
        k: usize,
        out: &mut Vec<(SiteId, f64)>,
    ) -> u64 {
        rank_held_into(|s| index.dist_sq(s, pos), held, k, out)
    }

    fn brute_knn(index: &VorTree, pos: Point, k: usize) -> Vec<SiteId> {
        index.brute_knn(pos, k)
    }

    fn validate_into(
        index: &VorTree,
        _scratch: &mut VorTreeScratch,
        _scope: &[SiteId],
        held: &[SiteId],
        current: &[(SiteId, f64)],
        pos: Point,
        k: usize,
        out: &mut Vec<(SiteId, f64)>,
    ) -> (Verdict, u64) {
        scan_validate_into(|s| index.dist_sq(s, pos), held, current, k, out)
    }
}

/// The §III-A validation scan shared by the (plain and weighted)
/// Euclidean spaces: the result is valid while the farthest current
/// member (`r.delete`) is not farther than the nearest guard
/// (`r.candidate`, ties valid). On invalidation the held objects are
/// ranked into the candidate replacement. One distance evaluation per
/// held object either way; `out` receives the refreshed result
/// (valid) or the candidate set (invalid).
///
/// This is the same predicate as
/// [`crate::influential::validate_by_distance`] (which reports the
/// delete/candidate pair for observers and benches); the comparison
/// semantics — squared distances, boundary ties valid — must stay in
/// sync between the two. This variant materialises nothing, keeping the
/// fleet engine's valid-tick path allocation-free.
pub(crate) fn scan_validate_into<F: Fn(SiteId) -> f64 + Copy>(
    dist_sq: F,
    held: &[SiteId],
    current: &[(SiteId, f64)],
    k: usize,
    out: &mut Vec<(SiteId, f64)>,
) -> (Verdict, u64) {
    let ops = held.len() as u64;
    let mut max_knn = f64::NEG_INFINITY;
    for &(s, _) in current {
        max_knn = max_knn.max(dist_sq(s));
    }
    let mut min_guard = f64::INFINITY;
    for &s in held {
        if !current.iter().any(|&(c, _)| c == s) {
            min_guard = min_guard.min(dist_sq(s));
        }
    }
    if max_knn <= min_guard {
        out.clear();
        out.extend(current.iter().map(|&(s, _)| (s, dist_sq(s))));
        // Total-order comparator, so the unstable (allocation-free)
        // sort is deterministic.
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        for r in out.iter_mut() {
            r.1 = r.1.sqrt();
        }
        (Verdict::Valid, ops)
    } else {
        let rank_ops = rank_held_into(dist_sq, held, k, out);
        (Verdict::Invalid, ops + rank_ops)
    }
}

/// The §III-A scan shared by the (plain and weighted) Euclidean spaces:
/// the top-k of the held objects under `dist_sq`, ascending by
/// (distance, id), distances square-rooted on the way out, written into
/// `out` (cleared first). Op count = one distance evaluation per held
/// object.
pub(crate) fn rank_held_into<F: Fn(SiteId) -> f64>(
    dist_sq: F,
    held: &[SiteId],
    k: usize,
    out: &mut Vec<(SiteId, f64)>,
) -> u64 {
    let ops = held.len() as u64;
    out.clear();
    out.extend(held.iter().map(|&s| (s, dist_sq(s))));
    let k = k.min(out.len());
    if out.len() > k && k > 0 {
        out.select_nth_unstable_by(k - 1, |a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
    }
    out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    for r in out.iter_mut() {
        r.1 = r.1.sqrt();
    }
    ops
}

/// The INS moving-kNN processor over a [`VorTree`] — the Euclidean
/// instantiation of the generic [`Processor`].
pub type InsProcessor<B> = Processor<Euclidean, B>;

impl<B: Borrow<VorTree>> Processor<Euclidean, B> {
    /// The implicit safe region of the current result — the order-k
    /// Voronoi cell `V^k(kNN)`, materialised by clipping against the INS
    /// (exact, because `MIS ⊆ INS`). This is the cyan polygon of the
    /// demo's 2D-plane mode; the INS algorithm itself never constructs it.
    pub fn safe_region(&self) -> ConvexPolygon {
        let voronoi = self.index().voronoi();
        let knn: Vec<SiteId> = self.current_knn();
        let ins = self.influential_set();
        order_k_cell(voronoi.points(), &knn, &ins, &voronoi.bounds())
    }

    /// The demo's two validation circles around the last position: green
    /// through the farthest kNN (must enclose all kNN), red through the
    /// nearest guard (must exclude all guards). The result is valid while
    /// the green circle is inside the red one.
    pub fn validation_circles(&self) -> Option<(Circle, Circle)> {
        let q = self.last_pos()?;
        let knn_far = self
            .current_knn_with_dists()
            .iter()
            .map(|&(s, _)| self.index().point(s).distance(q))
            .fold(f64::NEG_INFINITY, f64::max);
        let guard = self.guard_set();
        let guard_near = guard
            .iter()
            .map(|&s| self.index().point(s).distance(q))
            .fold(f64::INFINITY, f64::min);
        if !knn_far.is_finite() || !guard_near.is_finite() {
            return None;
        }
        Some((Circle::new(q, knn_far), Circle::new(q, guard_near)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TickOutcome;
    use crate::processor::{InsConfig, MovingKnn};
    use insq_geom::Aabb;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn build_index(n: usize, seed: u64) -> VorTree {
        let mut next = lcg(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        VorTree::build(
            points,
            Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0)),
        )
        .unwrap()
    }

    fn brute_knn(index: &VorTree, q: Point, k: usize) -> Vec<SiteId> {
        index.voronoi().knn_brute(q, k)
    }

    #[test]
    fn rejects_bad_configs() {
        let idx = build_index(20, 1);
        assert!(InsProcessor::new(&idx, InsConfig::new(0, 1.5)).is_err());
        assert!(InsProcessor::new(&idx, InsConfig::new(21, 1.5)).is_err());
        assert!(InsProcessor::new(&idx, InsConfig::new(3, 0.5)).is_err());
        assert!(InsProcessor::new(&idx, InsConfig::new(3, f64::NAN)).is_err());
        assert!(InsProcessor::new(&idx, InsConfig::new(3, 1.0)).is_ok());
    }

    #[test]
    fn prefetch_count_floor() {
        assert_eq!(InsConfig::new(5, 1.6).prefetch_count(), 8);
        assert_eq!(InsConfig::new(4, 1.0).prefetch_count(), 4);
        assert_eq!(InsConfig::new(3, 2.5).prefetch_count(), 7);
    }

    #[test]
    fn matches_brute_force_along_walk() {
        let idx = build_index(300, 42);
        let mut p = InsProcessor::new(&idx, InsConfig::new(5, 1.6)).unwrap();
        let mut next = lcg(7);
        // A random-waypoint walk with small steps.
        let mut pos = Point::new(50.0, 50.0);
        let mut target = Point::new(next() * 100.0, next() * 100.0);
        for _ in 0..600 {
            if pos.distance(target) < 1.0 {
                target = Point::new(next() * 100.0, next() * 100.0);
            }
            let dir = (target - pos)
                .normalized()
                .unwrap_or(insq_geom::Vector::ZERO);
            pos += dir * 0.8;
            p.tick(pos);
            let mut got = p.current_knn();
            got.sort_unstable();
            let mut want = brute_knn(&idx, pos, 5);
            want.sort_unstable();
            assert_eq!(got, want, "kNN mismatch at {pos:?}");
        }
        // The whole point of INS: recomputations must be rare on a smooth
        // trajectory.
        let s = p.stats();
        assert!(s.valid_ticks > s.ticks / 2, "{s:?}");
        assert!(s.recomputations < s.ticks / 5, "{s:?}");
    }

    #[test]
    fn teleporting_query_forces_recompute() {
        let idx = build_index(200, 5);
        let mut p = InsProcessor::new(&idx, InsConfig::new(3, 1.6)).unwrap();
        p.tick(Point::new(10.0, 10.0));
        let outcome = p.tick(Point::new(90.0, 90.0));
        assert_eq!(outcome, TickOutcome::Recompute);
        let mut got = p.current_knn();
        got.sort_unstable();
        let mut want = brute_knn(&idx, Point::new(90.0, 90.0), 3);
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn stationary_query_stays_valid() {
        let idx = build_index(100, 9);
        let mut p = InsProcessor::new(&idx, InsConfig::new(4, 1.6)).unwrap();
        let q = Point::new(40.0, 60.0);
        p.tick(q);
        for _ in 0..10 {
            assert_eq!(p.tick(q), TickOutcome::Valid);
        }
        assert_eq!(p.stats().valid_ticks, 10);
        assert_eq!(p.stats().recomputations, 1); // only the initial one
    }

    #[test]
    fn guard_set_and_ins_relationship() {
        let idx = build_index(150, 13);
        let mut p = InsProcessor::new(&idx, InsConfig::new(4, 2.0)).unwrap();
        p.tick(Point::new(50.0, 50.0));
        let ins = p.influential_set();
        let guard = p.guard_set();
        // Every INS member is held as a guard after a recompute.
        for s in &ins {
            assert!(guard.contains(s), "INS member {s} must be guarded");
        }
        // No kNN member is in either set.
        for s in p.current_knn() {
            assert!(!ins.contains(&s));
            assert!(!guard.contains(&s));
        }
        // Scan-validating spaces maintain no probe scope (the §III-A
        // scan reads the held set directly).
        assert!(p.scope().is_empty());
    }

    #[test]
    fn safe_region_contains_query_and_characterizes_knn() {
        let idx = build_index(80, 21);
        let mut p = InsProcessor::new(&idx, InsConfig::new(3, 1.6)).unwrap();
        let q = Point::new(55.0, 45.0);
        p.tick(q);
        let region = p.safe_region();
        assert!(region.contains(q), "query inside its own safe region");
        // Points inside the region share the kNN set.
        let mut knn_sorted = p.current_knn();
        knn_sorted.sort_unstable();
        if let Some(c) = region.centroid() {
            let mut at_centroid = brute_knn(&idx, c, 3);
            at_centroid.sort_unstable();
            assert_eq!(at_centroid, knn_sorted);
        }
    }

    #[test]
    fn validation_circles_nested_while_valid() {
        let idx = build_index(120, 33);
        let mut p = InsProcessor::new(&idx, InsConfig::new(5, 1.6)).unwrap();
        let q = Point::new(30.0, 70.0);
        p.tick(q);
        let (green, red) = p.validation_circles().unwrap();
        assert!(green.radius <= red.radius, "valid state: green inside red");
        assert_eq!(green.center, q);
        assert_eq!(red.center, q);
    }

    #[test]
    fn rho_one_still_correct() {
        let idx = build_index(100, 77);
        let mut p = InsProcessor::new(&idx, InsConfig::new(2, 1.0)).unwrap();
        let mut next = lcg(3);
        for _ in 0..100 {
            let q = Point::new(next() * 100.0, next() * 100.0);
            p.tick(q);
            let mut got = p.current_knn();
            got.sort_unstable();
            let mut want = brute_knn(&idx, q, 2);
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn invalidate_forces_recompute_and_stays_correct() {
        let idx = build_index(120, 3);
        let mut p = InsProcessor::new(&idx, InsConfig::new(4, 1.6)).unwrap();
        let q = Point::new(50.0, 50.0);
        p.tick(q);
        assert_eq!(p.tick(q), TickOutcome::Valid);
        p.invalidate();
        assert!(p.held_objects().is_empty());
        assert_eq!(p.tick(q), TickOutcome::Recompute);
        let mut got = p.current_knn();
        got.sort_unstable();
        let mut want = brute_knn(&idx, q, 4);
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn rebind_switches_data_sets() {
        // Two different data sets model a server-side object update; the
        // same moving query continues across the rebind.
        let idx_a = build_index(100, 7);
        let idx_b = build_index(140, 8);
        let mut p = InsProcessor::new(&idx_a, InsConfig::new(3, 1.6)).unwrap();
        let q = Point::new(40.0, 60.0);
        p.tick(q);
        let before_recomputes = p.stats().recomputations;
        p.rebind(&idx_b);
        assert_eq!(p.tick(q), TickOutcome::Recompute);
        assert_eq!(p.stats().recomputations, before_recomputes + 1);
        let mut got = p.current_knn();
        got.sort_unstable();
        let mut want = idx_b.voronoi().knn_brute(q, 3);
        want.sort_unstable();
        assert_eq!(got, want, "results come from the new data set");
        // Subsequent ticks validate against the new guards.
        assert_eq!(p.tick(q), TickOutcome::Valid);
    }

    #[test]
    fn rebind_to_smaller_than_k_index_degrades_gracefully() {
        // A published update may shrink the data set below k (mass POI
        // deletions). The query must keep answering with everything that
        // is left, not panic.
        let idx_a = build_index(100, 7);
        let idx_b = build_index(3, 8);
        let mut p = InsProcessor::new(&idx_a, InsConfig::new(5, 1.6)).unwrap();
        let q = Point::new(40.0, 60.0);
        p.tick(q);
        assert_eq!(p.current_knn().len(), 5);
        p.rebind(&idx_b);
        p.tick(q);
        let mut got = p.current_knn();
        got.sort_unstable();
        let mut want = idx_b.voronoi().knn_brute(q, 3);
        want.sort_unstable();
        assert_eq!(got, want, "all remaining objects, exactly");
        assert_eq!(p.tick(q), TickOutcome::Valid);
    }

    #[test]
    fn k_equals_n_never_invalidates() {
        let idx = build_index(10, 2);
        let mut p = InsProcessor::new(&idx, InsConfig::new(10, 1.0)).unwrap();
        let mut next = lcg(11);
        p.tick(Point::new(0.0, 0.0));
        for _ in 0..20 {
            let q = Point::new(next() * 100.0, next() * 100.0);
            let outcome = p.tick(q);
            // All objects are the kNN: the guard set is empty, so the
            // result can never be invalidated.
            assert_eq!(outcome, TickOutcome::Valid);
        }
    }
}

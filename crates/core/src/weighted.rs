//! The weighted (anisotropic) Euclidean [`Space`] — the third space, and
//! the proof that the [`Space`] abstraction is real.
//!
//! Positions and data objects live in the ordinary plane, but distance
//! is per-axis scaled L2 (`insq_index::AxisWeights`): the travel-time
//! metric of a world whose axes have different speeds. The index is a
//! [`WeightedVorTree`] — a coordinate transform over the standard
//! `VorTree`, whose scaled-space Voronoi diagram *is* the weighted
//! Voronoi diagram of the original points — so Theorem 1 (`MIS ⊆ INS`)
//! and the §III-A validation scan hold verbatim and this space passes
//! the exact same brute-force and fleet-determinism conformance suites
//! as the other two.
//!
//! Everything below delegates to the Euclidean machinery after scaling
//! the query position; no processor, server or workload code is
//! special-cased for it anywhere.

use insq_geom::Point;
use insq_index::{VorTreeScratch, WeightedVorTree};
use insq_voronoi::SiteId;

use crate::euclidean::rank_held_into;
use crate::influential::influential_neighbor_set_into;
use crate::processor::Processor;
use crate::space::{Space, Verdict};

/// The 2-D plane under per-axis scaled L2 distance, indexed by a
/// [`WeightedVorTree`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeightedEuclidean;

impl Space for WeightedEuclidean {
    type Pos = Point;
    type SiteId = SiteId;
    type Index = WeightedVorTree;
    type Scratch = VorTreeScratch;

    const NAME: &'static str = "INS-w";

    fn num_sites(index: &WeightedVorTree) -> usize {
        index.len()
    }

    fn ordinal(id: SiteId) -> usize {
        id.idx()
    }

    fn global_knn_into(
        index: &WeightedVorTree,
        scratch: &mut VorTreeScratch,
        pos: Point,
        m: usize,
        out: &mut Vec<(SiteId, f64)>,
    ) -> u64 {
        index.knn_into(scratch, pos, m, out);
        out.len() as u64
    }

    fn influential_into(index: &WeightedVorTree, ids: &[SiteId], out: &mut Vec<SiteId>) {
        influential_neighbor_set_into(index.voronoi(), ids, out)
    }

    fn scoped_knn_into(
        index: &WeightedVorTree,
        _scratch: &mut VorTreeScratch,
        _scope: &[SiteId],
        held: &[SiteId],
        pos: Point,
        k: usize,
        out: &mut Vec<(SiteId, f64)>,
    ) -> u64 {
        let q = index.weights().scale(pos);
        rank_held_into(|s| index.tree().dist_sq(s, q), held, k, out)
    }

    fn brute_knn(index: &WeightedVorTree, pos: Point, k: usize) -> Vec<SiteId> {
        index.knn_brute(pos, k)
    }

    fn validate_into(
        index: &WeightedVorTree,
        _scratch: &mut VorTreeScratch,
        _scope: &[SiteId],
        held: &[SiteId],
        current: &[(SiteId, f64)],
        pos: Point,
        k: usize,
        out: &mut Vec<(SiteId, f64)>,
    ) -> (Verdict, u64) {
        let q = index.weights().scale(pos);
        crate::euclidean::scan_validate_into(|s| index.tree().dist_sq(s, q), held, current, k, out)
    }
}

/// The INS moving-kNN processor under weighted L2 — the anisotropic
/// instantiation of the generic [`Processor`].
pub type WInsProcessor<B> = Processor<WeightedEuclidean, B>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::{InsConfig, MovingKnn};
    use insq_geom::Aabb;
    use insq_index::AxisWeights;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn build(n: usize, seed: u64, w: AxisWeights) -> WeightedVorTree {
        let mut next = lcg(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        let bounds = Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0));
        WeightedVorTree::build(points, bounds, w).unwrap()
    }

    #[test]
    fn matches_weighted_brute_force_along_walk() {
        let idx = build(300, 42, AxisWeights::new(1.0, 2.5).unwrap());
        let mut p = WInsProcessor::new(&idx, InsConfig::new(5, 1.6)).unwrap();
        let mut next = lcg(7);
        let mut pos = Point::new(50.0, 50.0);
        let mut target = Point::new(next() * 100.0, next() * 100.0);
        for _ in 0..600 {
            if pos.distance(target) < 1.0 {
                target = Point::new(next() * 100.0, next() * 100.0);
            }
            let dir = (target - pos)
                .normalized()
                .unwrap_or(insq_geom::Vector::ZERO);
            pos += dir * 0.8;
            p.tick(pos);
            let mut got = p.current_knn();
            got.sort_unstable();
            let mut want = idx.knn_brute(pos, 5);
            want.sort_unstable();
            assert_eq!(got, want, "kNN mismatch at {pos:?}");
        }
        let s = p.stats();
        assert!(s.valid_ticks > s.ticks / 2, "{s:?}");
        assert!(s.recomputations < s.ticks / 5, "{s:?}");
    }

    #[test]
    fn anisotropy_changes_answers() {
        // Two sites equidistant under L2 separate under weights: the
        // fast-axis one wins.
        let bounds = Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0));
        let pts = vec![
            Point::new(60.0, 50.0), // 10 to the east
            Point::new(50.0, 40.0), // 10 to the south
            Point::new(90.0, 90.0),
        ];
        let w = AxisWeights::new(1.0, 3.0).unwrap(); // north–south is slow
        let idx = WeightedVorTree::build(pts, bounds, w).unwrap();
        let mut p = WInsProcessor::new(&idx, InsConfig::new(1, 1.6)).unwrap();
        p.tick(Point::new(50.0, 50.0));
        assert_eq!(p.current_knn(), vec![SiteId(0)], "east beats south at wy=3");
    }

    #[test]
    fn unit_weights_agree_with_plain_euclidean() {
        let idx_w = build(200, 9, AxisWeights::UNIT);
        let plain = insq_index::VorTree::build(
            (0..idx_w.len())
                .map(|i| idx_w.point(SiteId(i as u32)))
                .collect(),
            Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0)),
        )
        .unwrap();
        let mut pw = WInsProcessor::new(&idx_w, InsConfig::new(4, 1.6)).unwrap();
        let mut pe = crate::InsProcessor::new(&plain, InsConfig::new(4, 1.6)).unwrap();
        for i in 0..80 {
            let q = Point::new((i * 7 % 100) as f64, (i * 13 % 100) as f64);
            pw.tick(q);
            pe.tick(q);
            let mut a = pw.current_knn();
            let mut b = pe.current_knn();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "unit weights must reduce to plain L2 at {q:?}");
        }
    }
}

//! Influential sets (Definition 1) and the influential neighbor set
//! (Definition 4).
//!
//! The INS of a kNN set `O'` is the union of the order-1 Voronoi neighbor
//! sets of its members, minus `O'` itself:
//!
//! ```text
//! I(O') = ( ⋃_{p' ∈ O'} N_O(p') ) \ O'
//! ```
//!
//! By Theorem 1 (and the PVLDB'14 companion paper) `MIS(O') ⊆ I(O')`, so
//! the INS is an influential set: while every member of `O'` is closer to
//! the query than every member of `I(O')`, `O'` is guaranteed to be the
//! true kNN set. Computing `I(O')` is a k-way merge of precomputed
//! neighbor lists — time linear in `k` (average Voronoi degree is < 6).

use insq_geom::Point;
use insq_voronoi::{SiteId, Voronoi};

/// Computes the influential neighbor set `I(knn)` (sorted, deduplicated).
///
/// `knn` need not be sorted; duplicates are tolerated.
pub fn influential_neighbor_set(voronoi: &Voronoi, knn: &[SiteId]) -> Vec<SiteId> {
    let mut ins = Vec::with_capacity(knn.len() * 6);
    influential_neighbor_set_into(voronoi, knn, &mut ins);
    ins
}

/// Allocation-free [`influential_neighbor_set`]: writes `I(knn)` into
/// `out` (cleared first). With `out` at capacity this touches no
/// allocator — the per-tick construction path of the Euclidean spaces.
pub fn influential_neighbor_set_into(voronoi: &Voronoi, knn: &[SiteId], out: &mut Vec<SiteId>) {
    out.clear();
    for &p in knn {
        out.extend_from_slice(voronoi.neighbors(p));
    }
    out.sort_unstable();
    out.dedup();
    out.retain(|s| !knn.contains(s));
}

/// Checks Definition 1 empirically at a query position: `knn` is closer to
/// `q` than every member of `guard` (boundary ties count as valid).
///
/// This is the O(k + |IS|) validation scan of paper §III-A: find the
/// farthest current kNN (`r.delete`) and the nearest guard
/// (`r.candidate`); the set is valid while the former is not farther than
/// the latter.
///
/// The generic processor's hot path uses the allocation-free twin of
/// this predicate (`euclidean::scan_validate`); the comparison
/// semantics — squared distances, boundary ties valid — must stay in
/// sync between the two.
pub fn validate_by_distance(
    points: &[Point],
    q: Point,
    knn: &[SiteId],
    guard: &[SiteId],
) -> Validation {
    let mut delete = None;
    let mut max_knn = f64::NEG_INFINITY;
    for &p in knn {
        let d = points[p.idx()].distance_sq(q);
        if d > max_knn {
            max_knn = d;
            delete = Some(p);
        }
    }
    let mut candidate = None;
    let mut min_guard = f64::INFINITY;
    for &s in guard {
        let d = points[s.idx()].distance_sq(q);
        if d < min_guard {
            min_guard = d;
            candidate = Some(s);
        }
    }
    Validation {
        valid: max_knn <= min_guard,
        delete,
        candidate,
        ops: (knn.len() + guard.len()) as u64,
    }
}

/// Result of a validation scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Validation {
    /// Whether the kNN set is still guaranteed valid.
    pub valid: bool,
    /// The farthest current kNN member (`r.delete` in the paper) — the one
    /// to evict on a single-object update.
    pub delete: Option<SiteId>,
    /// The nearest guard object (`r.candidate`) — the one to admit.
    pub candidate: Option<SiteId>,
    /// Distance evaluations performed.
    pub ops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_geom::Aabb;

    fn grid_5x5() -> Voronoi {
        let points: Vec<Point> = (0..5)
            .flat_map(|i| (0..5).map(move |j| Point::new(i as f64, j as f64)))
            .collect();
        let bounds = Aabb::new(Point::new(-1.0, -1.0), Point::new(5.0, 5.0));
        Voronoi::build(points, bounds).unwrap()
    }

    #[test]
    fn ins_excludes_knn_and_dedups() {
        let v = grid_5x5();
        // Center site 12 and a neighbor.
        let knn = [SiteId(12), SiteId(7)];
        let ins = influential_neighbor_set(&v, &knn);
        assert!(!ins.contains(&SiteId(12)));
        assert!(!ins.contains(&SiteId(7)));
        // Sorted + unique.
        for w in ins.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Must contain the axis neighbors of both members (those not in
        // the kNN itself).
        for required in [
            SiteId(11),
            SiteId(13),
            SiteId(17),
            SiteId(2),
            SiteId(6),
            SiteId(8),
        ] {
            assert!(ins.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn ins_of_single_site_is_its_neighbor_list() {
        let v = grid_5x5();
        let ins = influential_neighbor_set(&v, &[SiteId(12)]);
        let direct: Vec<SiteId> = v.neighbors(SiteId(12)).to_vec();
        assert_eq!(ins, direct);
    }

    #[test]
    fn validation_scan_finds_extremes() {
        let v = grid_5x5();
        let q = Point::new(2.1, 2.1);
        let knn = [SiteId(12), SiteId(17)]; // (2,2) and (3,2)
        let ins = influential_neighbor_set(&v, &knn);
        let val = validate_by_distance(v.points(), q, &knn, &ins);
        assert!(val.valid, "both kNN are nearer than any neighbor");
        assert_eq!(val.ops as usize, knn.len() + ins.len());
        // Farthest of the two kNN from q=(2.1,2.1) is (3,2) = id 17.
        assert_eq!(val.delete, Some(SiteId(17)));
        assert!(val.candidate.is_some());
    }

    #[test]
    fn validation_fails_when_guard_closer() {
        let v = grid_5x5();
        // Claim kNN = two far corners while standing at the center: any
        // neighbor of the corners that is nearer invalidates.
        let q = Point::new(2.0, 2.0);
        let knn = [SiteId(0), SiteId(24)];
        let ins = influential_neighbor_set(&v, &knn);
        let val = validate_by_distance(v.points(), q, &knn, &ins);
        assert!(!val.valid);
    }

    #[test]
    fn boundary_tie_counts_as_valid() {
        let v = grid_5x5();
        // q equidistant from (2,2) and (3,2): claiming k=1 kNN {12} with
        // guard {17} is still valid on the boundary.
        let q = Point::new(2.5, 2.0);
        let val = validate_by_distance(v.points(), q, &[SiteId(12)], &[SiteId(17)]);
        assert!(val.valid);
    }

    #[test]
    fn empty_guard_is_always_valid() {
        let v = grid_5x5();
        let val = validate_by_distance(v.points(), Point::new(0.0, 0.0), &[SiteId(0)], &[]);
        assert!(val.valid);
        assert_eq!(val.candidate, None);
    }
}

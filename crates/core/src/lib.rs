//! # insq-core
//!
//! The Influential Neighbor Set (INS) moving-kNN algorithm — the primary
//! contribution of *INSQ: An Influential Neighbor Set Based Moving kNN
//! Query Processing System* (Li et al., ICDE 2016) — for both 2-D
//! Euclidean space and road networks.
//!
//! Map from the paper to this crate:
//!
//! | Paper concept | Here |
//! |---|---|
//! | Influential set `S` of `O'` (Def. 1) | [`influential::validate_by_distance`] — the guarding predicate |
//! | Minimal influential set (Def. 2) | [`mis`] — exact MIS via tagged order-k cells (oracle) |
//! | Voronoi neighbor set (Def. 3) | `insq_voronoi::Voronoi::neighbors` |
//! | Influential neighbor set (Def. 4) | [`influential::influential_neighbor_set`] |
//! | Query processing (§III) | [`euclidean::InsProcessor`] |
//! | INS in road networks (§IV, Thms. 1–2) | [`network::NetInsProcessor`] |
//!
//! Every processor implements [`MovingKnn`], shared with the baselines in
//! `insq-baselines`, and certifies each returned result via the
//! influential-set predicate — so results provably equal the brute-force
//! kNN at every timestamp.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod continuous;
pub mod euclidean;
pub mod influential;
pub mod metrics;
pub mod mis;
pub mod network;
pub mod processor;

pub use continuous::{knn_change_events, KnnEvent, MotionTrace};
pub use euclidean::{InsConfig, InsProcessor};
pub use influential::{influential_neighbor_set, validate_by_distance, Validation};
pub use metrics::{QueryStats, TickOutcome};
pub use mis::{minimal_influential_set, mis_via_ins, mis_with_candidates};
pub use network::{influential_neighbor_set_net, NetInsConfig, NetInsProcessor};
pub use processor::MovingKnn;

/// Errors from processor construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Invalid configuration.
    BadConfig {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::BadConfig { reason } => write!(f, "bad configuration: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}

//! # insq-core
//!
//! The Influential Neighbor Set (INS) moving-kNN algorithm — the primary
//! contribution of *INSQ: An Influential Neighbor Set Based Moving kNN
//! Query Processing System* (Li et al., ICDE 2016) — implemented **once**,
//! generically over a [`Space`], and instantiated for the paper's two
//! settings plus a third:
//!
//! | Space | Setting | Processor alias |
//! |---|---|---|
//! | [`Euclidean`] | 2-D plane, L2 (paper §III) | [`InsProcessor`] |
//! | [`Network`] | road networks, shortest path (paper §IV) | [`NetInsProcessor`] |
//! | [`WeightedEuclidean`] | 2-D plane, per-axis scaled L2 | [`WInsProcessor`] |
//!
//! Map from the paper to this crate:
//!
//! | Paper concept | Here |
//! |---|---|
//! | Influential set `S` of `O'` (Def. 1) | [`influential::validate_by_distance`] — the guarding predicate |
//! | Minimal influential set (Def. 2) | [`mis`] — exact MIS via tagged order-k cells (oracle) |
//! | Voronoi neighbor set (Def. 3) | `insq_voronoi::Voronoi::neighbors` |
//! | Influential neighbor set (Def. 4) | [`Space::influential`] per space |
//! | Query processing (§III, §IV) | the generic [`Processor`] |
//! | Theorem-2 validation | [`Space::scoped_knn`] per space |
//!
//! Every processor implements [`MovingKnn`], shared with the baselines in
//! `insq-baselines`, and certifies each returned result via the
//! influential-set predicate — so results provably equal the brute-force
//! kNN at every timestamp, in every space.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod continuous;
pub mod euclidean;
pub mod influential;
pub mod metrics;
pub mod mis;
pub mod network;
pub mod processor;
pub mod space;
pub mod weighted;

pub use continuous::{knn_change_events, KnnEvent, MotionTrace};
pub use euclidean::{Euclidean, InsProcessor};
pub use influential::{
    influential_neighbor_set, influential_neighbor_set_into, validate_by_distance, Validation,
};
pub use metrics::{QueryStats, TickOutcome};
pub use mis::{minimal_influential_set, mis_via_ins, mis_with_candidates};
pub use network::{
    influential_neighbor_set_net, influential_neighbor_set_net_into, NetInsProcessor, NetScratch,
    Network,
};
pub use processor::{InsConfig, MovingKnn, Processor};
pub use space::{DeltaIndex, Space, Validated, Verdict};
pub use weighted::{WInsProcessor, WeightedEuclidean};

/// The network processor configuration — identical to [`InsConfig`] now
/// that one generic processor serves every space (the
/// `incremental_fetch` flag is moot on road networks, where
/// [`Space::IMPLICIT_FETCH`] applies).
pub type NetInsConfig = InsConfig;

/// Errors from processor construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Invalid configuration.
    BadConfig {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::BadConfig { reason } => write!(f, "bad configuration: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}

//! Scratch-pollution property test: a long-lived, *shared* scratch arena
//! must be observationally invisible. Every tick through a scratch that
//! has already served arbitrary other queries, spaces, and epochs must
//! be **bit-identical** (outcomes, result ids, result distances down to
//! the f64 bit pattern, validation scopes, statistics) to the same tick
//! through a freshly defaulted scratch.
//!
//! The interleavings are randomized but deterministic (fixed-seed LCG):
//! several processors round-robin over one shared scratch — exactly how
//! a fleet shard uses it — with invalidations and index rebinds (epoch
//! swaps) injected mid-run, while twin processors run the identical
//! schedule on fresh scratches.

use insq_core::{InsConfig, MovingKnn, Processor, QueryStats, Space};
use insq_geom::{Aabb, Point};
use insq_index::{AxisWeights, VorTree, WeightedVorTree};
use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};
use insq_roadnet::{NetTrajectory, NetworkWorld, SiteSet};
use std::sync::Arc;

/// A twin: the left processor ticks through the shared scratch, the
/// right through a fresh one.
type Pair<S> = (
    Processor<S, Arc<<S as Space>::Index>>,
    Processor<S, Arc<<S as Space>::Index>>,
);

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 11
    }
}

fn unit(r: u64) -> f64 {
    (r as f64) / ((1u64 << 53) as f64)
}

/// Drives `n_queries` twin processor pairs over `indexes` (rebinding on
/// schedule) through `steps` randomized ticks: the left twin of every
/// pair shares ONE scratch, the right twin gets a fresh scratch each
/// tick. Asserts bit-identical observable state throughout.
fn check_space<S: Space>(indexes: &[Arc<S::Index>], positions: &[S::Pos], k: usize, seed: u64)
where
    S::SiteId: std::fmt::Debug,
{
    let cfg = InsConfig::new(k, 1.6);
    let n_queries = 3;
    let mut shared = S::Scratch::default();
    let mut pairs: Vec<Pair<S>> = (0..n_queries)
        .map(|_| {
            (
                Processor::new(Arc::clone(&indexes[0]), cfg).unwrap(),
                Processor::new(Arc::clone(&indexes[0]), cfg).unwrap(),
            )
        })
        .collect();

    let mut next = lcg(seed);
    let steps = 400;
    for step in 0..steps {
        let who = (next() % n_queries as u64) as usize;
        let (a, b) = &mut pairs[who];
        match next() % 24 {
            // Rarely: drop all client state (forces a recomputation).
            0 => {
                a.invalidate();
                b.invalidate();
            }
            // Rarely: epoch swap — rebind to another snapshot.
            1 => {
                let idx = (next() % indexes.len() as u64) as usize;
                a.rebind(Arc::clone(&indexes[idx]));
                b.rebind(Arc::clone(&indexes[idx]));
            }
            _ => {}
        }
        let pos = positions[(next() % positions.len() as u64) as usize];
        let oa = a.tick_with(&mut shared, pos);
        let ob = b.tick_with(&mut S::Scratch::default(), pos);
        assert_eq!(oa, ob, "[{}] outcome diverged at step {step}", S::NAME);
        let ka = a.current_knn_with_dists();
        let kb = b.current_knn_with_dists();
        assert_eq!(ka.len(), kb.len(), "[{}] step {step}", S::NAME);
        for (&(sa, da), &(sb, db)) in ka.iter().zip(kb.iter()) {
            assert_eq!(sa, sb, "[{}] result id diverged at step {step}", S::NAME);
            assert_eq!(
                da.to_bits(),
                db.to_bits(),
                "[{}] result distance bits diverged at step {step}",
                S::NAME
            );
        }
        assert_eq!(a.scope(), b.scope(), "[{}] step {step}", S::NAME);
    }
    for (i, (a, b)) in pairs.iter().enumerate() {
        let (sa, sb): (&QueryStats, &QueryStats) = (a.stats(), b.stats());
        assert_eq!(sa, sb, "[{}] stats diverged for query {i}", S::NAME);
    }
}

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut next = lcg(seed);
    (0..n)
        .map(|_| Point::new(unit(next()) * 100.0, unit(next()) * 100.0))
        .collect()
}

fn bounds() -> Aabb {
    Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0))
}

#[test]
fn euclidean_shared_scratch_is_invisible() {
    let indexes: Vec<Arc<VorTree>> = [(400usize, 42u64), (250, 77)]
        .iter()
        .map(|&(n, s)| Arc::new(VorTree::build(random_points(n, s), bounds()).unwrap()))
        .collect();
    let positions = random_points(64, 5);
    check_space::<insq_core::Euclidean>(&indexes, &positions, 5, 1);
}

#[test]
fn weighted_shared_scratch_is_invisible() {
    let w = AxisWeights::new(1.0, 2.5).unwrap();
    let indexes: Vec<Arc<WeightedVorTree>> = [(300usize, 9u64), (200, 13)]
        .iter()
        .map(|&(n, s)| Arc::new(WeightedVorTree::build(random_points(n, s), bounds(), w).unwrap()))
        .collect();
    let positions = random_points(64, 6);
    check_space::<insq_core::WeightedEuclidean>(&indexes, &positions, 4, 2);
}

#[test]
fn network_shared_scratch_is_invisible() {
    let net = Arc::new(
        grid_network(
            &GridConfig {
                cols: 12,
                rows: 12,
                ..GridConfig::default()
            },
            3,
        )
        .unwrap(),
    );
    // Two epochs: same network, different site sets (the POIs-changed
    // update case).
    let indexes: Vec<Arc<NetworkWorld>> = [(30usize, 3u64), (24, 19)]
        .iter()
        .map(|&(n, s)| {
            let sv = random_site_vertices(&net, n, s).unwrap();
            let sites = SiteSet::new(&net, sv).unwrap();
            Arc::new(NetworkWorld::build(Arc::clone(&net), sites))
        })
        .collect();
    let tour = NetTrajectory::random_tour(&net, 8, 5).unwrap();
    let positions: Vec<_> = (0..64)
        .map(|i| tour.position(&net, tour.length() * i as f64 / 64.0))
        .collect();
    check_space::<insq_core::Network>(&indexes, &positions, 4, 3);
}

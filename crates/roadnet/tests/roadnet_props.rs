//! Property-based tests for the road-network substrate: shortest-path
//! metric axioms, network Voronoi partitioning, INE correctness and
//! trajectory kinematics, over randomly generated street networks.

use insq_roadnet::dijkstra::{
    distance_between, distances_from_vertex, k_label_dijkstra, multi_source, shortest_path,
};
use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};
use insq_roadnet::ine::{all_site_distances, network_knn};
use insq_roadnet::nvd::EdgeOwnership;
use insq_roadnet::{NetPosition, NetTrajectory, NetworkVoronoi, RoadNetwork, SiteSet, VertexId};
use proptest::prelude::*;

fn network_strategy() -> impl Strategy<Value = RoadNetwork> {
    (
        3u32..8,
        3u32..8,
        0.0f64..0.3,
        0.0f64..0.3,
        0.0f64..0.25,
        0u64..10_000,
    )
        .prop_map(|(cols, rows, jitter, diag, del, seed)| {
            grid_network(
                &GridConfig {
                    cols,
                    rows,
                    spacing: 1.0,
                    jitter,
                    diagonal_prob: diag,
                    deletion_prob: del,
                },
                seed,
            )
            .expect("valid grid config")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn dijkstra_metric_axioms(net in network_strategy(), a in 0u32..9, b in 0u32..9, c in 0u32..9) {
        let n = net.num_vertices() as u32;
        let (a, b, c) = (VertexId(a % n), VertexId(b % n), VertexId(c % n));
        let da = distances_from_vertex(&net, a);
        let db = distances_from_vertex(&net, b);
        // Identity and symmetry.
        prop_assert_eq!(da[a.idx()], 0.0);
        prop_assert!((da[b.idx()] - db[a.idx()]).abs() < 1e-9, "symmetry");
        // Triangle inequality.
        let dc = distances_from_vertex(&net, c);
        prop_assert!(da[b.idx()] <= da[c.idx()] + dc[b.idx()] + 1e-9, "triangle");
        // Connectivity: all distances finite.
        prop_assert!(da.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn shortest_path_is_consistent_with_distances(net in network_strategy(), a in 0u32..50, b in 0u32..50) {
        let n = net.num_vertices() as u32;
        let (a, b) = (VertexId(a % n), VertexId(b % n));
        let (d, path) = shortest_path(&net, a, b);
        let dists = distances_from_vertex(&net, a);
        prop_assert!((d - dists[b.idx()]).abs() < 1e-9);
        // The path's edge lengths sum to the distance.
        let mut total = 0.0;
        for w in path.windows(2) {
            // Use the cheapest connecting edge (parallel edges possible).
            let best = net
                .neighbors(w[0])
                .iter()
                .filter(|&&(v, _)| v == w[1])
                .map(|&(_, e)| net.edge(e).len)
                .fold(f64::INFINITY, f64::min);
            prop_assert!(best.is_finite(), "path edges exist");
            total += best;
        }
        prop_assert!((total - d).abs() < 1e-9, "path length {total} vs {d}");
        prop_assert_eq!(*path.first().unwrap(), a);
        prop_assert_eq!(*path.last().unwrap(), b);
    }

    #[test]
    fn multi_source_is_min_of_single_sources(net in network_strategy(), seed in 0u64..1000) {
        let m = (net.num_vertices() / 4).clamp(2, 8);
        let sources = random_site_vertices(&net, m, seed).expect("enough vertices");
        let (dist, owner) = multi_source(&net, &sources);
        let singles: Vec<Vec<f64>> = sources
            .iter()
            .map(|&s| distances_from_vertex(&net, s))
            .collect();
        for v in 0..net.num_vertices() {
            let want = singles.iter().map(|d| d[v]).fold(f64::INFINITY, f64::min);
            prop_assert!((dist[v] - want).abs() < 1e-9);
            // The owner achieves the minimum.
            prop_assert!((singles[owner[v] as usize][v] - want).abs() < 1e-9);
        }
    }

    #[test]
    fn k_label_top_k_distances(net in network_strategy(), seed in 0u64..1000, k in 1usize..4) {
        let m = (net.num_vertices() / 3).clamp(3, 10);
        let sources = random_site_vertices(&net, m, seed).expect("enough vertices");
        let k = k.min(m);
        let labels = k_label_dijkstra(&net, &sources, k);
        let singles: Vec<Vec<f64>> = sources
            .iter()
            .map(|&s| distances_from_vertex(&net, s))
            .collect();
        for v in 0..net.num_vertices() {
            let mut brute: Vec<f64> = singles.iter().map(|d| d[v]).collect();
            brute.sort_by(f64::total_cmp);
            prop_assert_eq!(labels[v].len(), k);
            for (rank, &(_, d)) in labels[v].iter().enumerate() {
                prop_assert!((d - brute[rank]).abs() < 1e-9, "vertex {v} rank {rank}");
            }
        }
    }

    #[test]
    fn nvd_partitions_and_owns_correctly(net in network_strategy(), seed in 0u64..1000) {
        let m = (net.num_vertices() / 4).clamp(2, 10);
        let sites = SiteSet::new(&net, random_site_vertices(&net, m, seed).unwrap()).unwrap();
        let nvd = NetworkVoronoi::build(&net, &sites);
        // Cell lengths partition the total network length.
        let total: f64 = (0..m as u32)
            .map(|s| nvd.cell_length(&net, insq_roadnet::SiteIdx(s)))
            .sum();
        prop_assert!((total - net.total_length()).abs() < 1e-6);
        // Split-edge borders are equidistant between the two owners.
        let singles: Vec<Vec<f64>> = sites
            .vertices()
            .iter()
            .map(|&s| distances_from_vertex(&net, s))
            .collect();
        for eid in 0..net.num_edges() as u32 {
            let e = insq_roadnet::EdgeId(eid);
            if let EdgeOwnership::Split { owner_u, owner_v, border } = nvd.edge_ownership(e) {
                let rec = net.edge(e);
                let du = singles[owner_u.idx()][rec.u.idx()] + border;
                let dv = singles[owner_v.idx()][rec.v.idx()] + (rec.len - border);
                prop_assert!((du - dv).abs() < 1e-9, "border equidistance");
            }
        }
    }

    #[test]
    fn ine_matches_full_dijkstra(net in network_strategy(), seed in 0u64..1000, e in 0u32..200, t in 0.05f64..0.95, k in 1usize..6) {
        let m = (net.num_vertices() / 3).clamp(3, 12);
        let sites = SiteSet::new(&net, random_site_vertices(&net, m, seed).unwrap()).unwrap();
        let e = insq_roadnet::EdgeId(e % net.num_edges() as u32);
        let pos = NetPosition::on_edge(&net, e, t * net.edge(e).len).unwrap();
        let k = k.min(m);
        let got = network_knn(&net, &sites, pos, k);
        let all = all_site_distances(&net, &sites, pos);
        let mut brute: Vec<f64> = all;
        brute.sort_by(f64::total_cmp);
        prop_assert_eq!(got.len(), k);
        for (rank, &(_, d)) in got.iter().enumerate() {
            prop_assert!((d - brute[rank]).abs() < 1e-9, "rank {rank}: {d} vs {}", brute[rank]);
        }
    }

    #[test]
    fn astar_equals_dijkstra(net in network_strategy(), a in 0u32..60, b in 0u32..60) {
        use insq_roadnet::astar::{astar, astar_distance_checked};
        let n = net.num_vertices() as u32;
        let (a, b) = (VertexId(a % n), VertexId(b % n));
        let (want, _) = shortest_path(&net, a, b);
        let fast = astar(&net, a, b);
        let checked = astar_distance_checked(&net, a, b);
        prop_assert!((fast.distance - want).abs() < 1e-9);
        prop_assert!((checked.distance - want).abs() < 1e-9);
        // A* never settles more than the full vertex set.
        prop_assert!(fast.settled <= net.num_vertices());
    }

    #[test]
    fn trajectory_positions_advance_by_arc_length(net in network_strategy(), seed in 0u64..1000, steps in 4usize..30) {
        let tour = match NetTrajectory::random_tour(&net, 5, seed) {
            Ok(t) => t,
            Err(_) => return Ok(()),
        };
        let len = tour.length();
        // Network distance between consecutive samples never exceeds the
        // arc-length step (paths may shortcut, never lengthen).
        let step = len / steps as f64;
        let mut prev = tour.position(&net, 0.0);
        for i in 1..=steps {
            let cur = tour.position(&net, step * i as f64);
            let d = distance_between(&net, prev, cur);
            prop_assert!(d <= step + 1e-6, "step {i}: network dist {d} > step {step}");
            prev = cur;
        }
    }
}

//! Incremental NVD conformance: a [`NetworkVoronoi`] maintained through
//! interleaved site insertions/removals *and edge-weight deltas* must
//! match a from-scratch `NetworkVoronoi::build` over the same site set
//! and current edge lengths — structurally (distances bit-identical;
//! owners, edge ownership and neighbor sets equal) on tie-free jittered
//! networks, and up to tie choices on degenerate unit-length grids.

use std::sync::Arc;

use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig, SplitMix64};
use insq_roadnet::{
    dijkstra::distances_from_vertex, EdgeId, EdgeOwnership, EdgeWeight, NetDelta, NetSiteDelta,
    NetworkVoronoi, NetworkWorld, RoadNetwork, SiteIdx, SiteSet, VertexId,
};

/// Full structural equivalence — valid when shortest-path ties are absent
/// (jittered edge lengths).
fn assert_structurally_equal(net: &RoadNetwork, inc: &NetworkVoronoi, sites: &SiteSet) {
    let rebuilt = NetworkVoronoi::build(net, sites);
    assert_eq!(inc.num_sites(), rebuilt.num_sites());
    for v in 0..net.num_vertices() {
        let v = VertexId(v as u32);
        assert_eq!(
            inc.dist(v).to_bits(),
            rebuilt.dist(v).to_bits(),
            "dist diverged at {v:?}"
        );
        assert_eq!(inc.owner(v), rebuilt.owner(v), "owner diverged at {v:?}");
    }
    for e in 0..net.num_edges() {
        let e = EdgeId(e as u32);
        assert_eq!(
            inc.edge_ownership(e),
            rebuilt.edge_ownership(e),
            "edge ownership diverged at {e:?}"
        );
    }
    for s in 0..sites.len() as u32 {
        assert_eq!(
            inc.neighbors(SiteIdx(s)),
            rebuilt.neighbors(SiteIdx(s)),
            "neighbor set diverged at site {s}"
        );
    }
}

/// Weak (tie-tolerant) conformance: distances must still be exact and the
/// owner of every vertex must be *a* nearest site; cells partition the
/// network length.
fn assert_exact_up_to_ties(net: &RoadNetwork, inc: &NetworkVoronoi, sites: &SiteSet) {
    let per_site: Vec<Vec<f64>> = sites
        .vertices()
        .iter()
        .map(|&v| distances_from_vertex(net, v))
        .collect();
    for v in 0..net.num_vertices() {
        let min = per_site.iter().map(|d| d[v]).fold(f64::INFINITY, f64::min);
        assert_eq!(inc.dist(VertexId(v as u32)), min, "dist at vertex {v}");
        assert_eq!(
            per_site[inc.owner(VertexId(v as u32)).idx()][v],
            min,
            "owner of vertex {v} is not a nearest site"
        );
    }
    let total: f64 = (0..sites.len() as u32)
        .map(|s| inc.cell_length(net, SiteIdx(s)))
        .sum();
    assert!(
        (total - net.total_length()).abs() < 1e-9,
        "cells partition the network: {total} vs {}",
        net.total_length()
    );
}

#[test]
fn interleaved_updates_match_rebuild_exactly() {
    // Jittered grid: irrational edge lengths, no shortest-path ties.
    let net = grid_network(
        &GridConfig {
            cols: 12,
            rows: 12,
            ..GridConfig::default()
        },
        42,
    )
    .unwrap();
    let mut sites = SiteSet::new(&net, random_site_vertices(&net, 18, 7).unwrap()).unwrap();
    let mut nvd = NetworkVoronoi::build(&net, &sites);
    let mut rng = SplitMix64::new(0xbead);

    for step in 0..90 {
        let grow = sites.len() <= 3 || rng.next_f64() < 0.55;
        if grow {
            let v = VertexId(rng.below(net.num_vertices()) as u32);
            if sites.site_at(v).is_some() {
                continue;
            }
            let idx = sites.insert(&net, v).unwrap();
            assert_eq!(nvd.insert_site(&net, v), idx);
        } else {
            let s = SiteIdx(rng.below(sites.len()) as u32);
            let moved = sites.remove(s).unwrap();
            nvd.remove_site(&net, s, moved);
        }
        assert_structurally_equal(&net, &nvd, &sites);
        if step % 10 == 0 {
            assert_exact_up_to_ties(&net, &nvd, &sites);
        }
    }
}

#[test]
fn degenerate_unit_grid_stays_exact_up_to_ties() {
    // Unit-length edges: massive shortest-path ties. Incremental and
    // rebuilt diagrams may pick different (equally correct) owners, but
    // distances and the partition property must hold after every step.
    let w = 7u32;
    let mut coords = Vec::new();
    let mut edges = Vec::new();
    for r in 0..w {
        for c in 0..w {
            coords.push(insq_geom::Point::new(c as f64, r as f64));
        }
    }
    for r in 0..w {
        for c in 0..w {
            let id = r * w + c;
            if c + 1 < w {
                edges.push(insq_roadnet::EdgeRec {
                    u: VertexId(id),
                    v: VertexId(id + 1),
                    len: 1.0,
                });
            }
            if r + 1 < w {
                edges.push(insq_roadnet::EdgeRec {
                    u: VertexId(id),
                    v: VertexId(id + w),
                    len: 1.0,
                });
            }
        }
    }
    let net = RoadNetwork::new(coords, edges).unwrap();
    let mut sites = SiteSet::new(&net, vec![VertexId(0), VertexId(24), VertexId(48)]).unwrap();
    let mut nvd = NetworkVoronoi::build(&net, &sites);
    let mut rng = SplitMix64::new(3);

    for _ in 0..50 {
        if sites.len() <= 2 || rng.next_f64() < 0.6 {
            let v = VertexId(rng.below(net.num_vertices()) as u32);
            if sites.site_at(v).is_some() {
                continue;
            }
            let idx = sites.insert(&net, v).unwrap();
            assert_eq!(nvd.insert_site(&net, v), idx);
        } else {
            let s = SiteIdx(rng.below(sites.len()) as u32);
            let moved = sites.remove(s).unwrap();
            nvd.remove_site(&net, s, moved);
        }
        assert_exact_up_to_ties(&net, &nvd, &sites);
    }
}

/// A random weight batch over `d` distinct edges, each length drawn
/// absolutely against the free-flow `base` (factor in [0.5, 3.0]) so
/// repeated storms never drift the network toward 0 or infinity.
fn random_storm(base: &RoadNetwork, d: usize, rng: &mut SplitMix64) -> Vec<EdgeWeight> {
    let mut edges = std::collections::BTreeSet::new();
    while edges.len() < d.min(base.num_edges()) {
        edges.insert(rng.below(base.num_edges()) as u32);
    }
    edges
        .into_iter()
        .map(|e| EdgeWeight {
            edge: EdgeId(e),
            len: base.edge(EdgeId(e)).len * rng.range(0.5, 3.0),
        })
        .collect()
}

#[test]
fn interleaved_weight_and_site_updates_match_rebuild_exactly() {
    // Jittered grid scaled by random factors: shortest-path ties stay
    // absent, so the repaired diagram must be bit-identical to a
    // from-scratch build over the *current* lengths after every step.
    let base = grid_network(
        &GridConfig {
            cols: 12,
            rows: 12,
            ..GridConfig::default()
        },
        17,
    )
    .unwrap();
    let mut cur = base.clone();
    let mut sites = SiteSet::new(&base, random_site_vertices(&base, 14, 5).unwrap()).unwrap();
    let mut nvd = NetworkVoronoi::build(&cur, &sites);
    let mut rng = SplitMix64::new(0xD017A);

    for step in 0..80 {
        match rng.below(3) {
            0 if sites.len() > 3 => {
                let s = SiteIdx(rng.below(sites.len()) as u32);
                let moved = sites.remove(s).unwrap();
                nvd.remove_site(&cur, s, moved);
            }
            1 => {
                let v = VertexId(rng.below(cur.num_vertices()) as u32);
                if sites.site_at(v).is_some() {
                    continue;
                }
                let idx = sites.insert(&cur, v).unwrap();
                assert_eq!(nvd.insert_site(&cur, v), idx);
            }
            _ => {
                let d = 1 + rng.below(12);
                let storm = random_storm(&base, d, &mut rng);
                let changed: Vec<EdgeId> = storm.iter().map(|w| w.edge).collect();
                let next = cur.reweighted(&storm).unwrap();
                nvd.reweight_edges(&cur, &next, &changed);
                cur = next;
            }
        }
        assert_structurally_equal(&cur, &nvd, &sites);
        if step % 10 == 0 {
            assert_exact_up_to_ties(&cur, &nvd, &sites);
        }
    }
}

#[test]
fn degenerate_grid_weight_deltas_stay_exact_up_to_ties() {
    // Unit grid with integer re-weights (1.0 <-> 2.0): ties everywhere,
    // in every epoch. The repaired diagram may pick different owners
    // than a rebuild, but distances stay exact and cells partition the
    // network after every step.
    let net = grid_network(
        &GridConfig {
            cols: 7,
            rows: 7,
            jitter: 0.0,
            ..GridConfig::default()
        },
        0,
    )
    .unwrap();
    let mut cur = net.clone();
    let mut sites = SiteSet::new(&net, vec![VertexId(0), VertexId(24), VertexId(48)]).unwrap();
    let mut nvd = NetworkVoronoi::build(&cur, &sites);
    let mut rng = SplitMix64::new(44);

    for _ in 0..40 {
        match rng.below(3) {
            0 if sites.len() > 2 => {
                let s = SiteIdx(rng.below(sites.len()) as u32);
                let moved = sites.remove(s).unwrap();
                nvd.remove_site(&cur, s, moved);
            }
            1 => {
                let v = VertexId(rng.below(cur.num_vertices()) as u32);
                if sites.site_at(v).is_some() {
                    continue;
                }
                let idx = sites.insert(&cur, v).unwrap();
                assert_eq!(nvd.insert_site(&cur, v), idx);
            }
            _ => {
                // Toggle a handful of edges between 1.0 and 2.0 —
                // integer lengths preserve massive tie structure.
                let d = 1 + rng.below(6);
                let mut edges = std::collections::BTreeSet::new();
                while edges.len() < d {
                    edges.insert(rng.below(cur.num_edges()) as u32);
                }
                let storm: Vec<EdgeWeight> = edges
                    .into_iter()
                    .map(|e| EdgeWeight {
                        edge: EdgeId(e),
                        len: if cur.edge(EdgeId(e)).len == 1.0 {
                            2.0
                        } else {
                            1.0
                        },
                    })
                    .collect();
                let changed: Vec<EdgeId> = storm.iter().map(|w| w.edge).collect();
                let next = cur.reweighted(&storm).unwrap();
                nvd.reweight_edges(&cur, &next, &changed);
                cur = next;
            }
        }
        assert_exact_up_to_ties(&cur, &nvd, &sites);
    }
}

#[test]
fn apply_delta_epoch_chain_matches_rebuild_exactly() {
    // The composed path: NetworkWorld::apply_delta carrying weight
    // changes and site changes in ONE delta, chained across epochs.
    // Each epoch's snapshot must equal a from-scratch build over its
    // own network and site set, bit for bit (jittered grid: no ties).
    let base = Arc::new(
        grid_network(
            &GridConfig {
                cols: 10,
                rows: 10,
                ..GridConfig::default()
            },
            77,
        )
        .unwrap(),
    );
    let sites = SiteSet::new(&base, random_site_vertices(&base, 12, 31).unwrap()).unwrap();
    let mut snap = NetworkWorld::build(Arc::clone(&base), sites);
    let mut rng = SplitMix64::new(0xEC0);

    for _ in 0..25 {
        let storm = random_storm(&base, 1 + rng.below(8), &mut rng);
        let mut sd = NetSiteDelta::default();
        if snap.sites.len() > 4 && rng.next_f64() < 0.5 {
            sd.removed.push(SiteIdx(rng.below(snap.sites.len()) as u32));
        }
        let v = VertexId(rng.below(base.num_vertices()) as u32);
        if snap.sites.site_at(v).is_none() {
            sd.added.push(v);
        }
        let delta = NetDelta::from(sd).with_weights(storm);
        snap = snap.apply_delta(&delta).unwrap();
        assert_structurally_equal(&snap.net, &snap.nvd, &snap.sites);
    }
}

#[test]
fn removal_relabels_the_swapped_site_everywhere() {
    let net = grid_network(
        &GridConfig {
            cols: 8,
            rows: 8,
            ..GridConfig::default()
        },
        11,
    )
    .unwrap();
    let mut sites = SiteSet::new(&net, random_site_vertices(&net, 9, 23).unwrap()).unwrap();
    let mut nvd = NetworkVoronoi::build(&net, &sites);

    // Remove a middle site: the last site (index 8) is renamed to 2.
    let moved = sites.remove(SiteIdx(2)).unwrap();
    assert_eq!(moved, Some(SiteIdx(8)));
    nvd.remove_site(&net, SiteIdx(2), moved);
    assert_structurally_equal(&net, &nvd, &sites);
    // Split-edge ownership labels must all be in range after the rename.
    for e in 0..net.num_edges() {
        match nvd.edge_ownership(EdgeId(e as u32)) {
            EdgeOwnership::Whole(o) => assert!(o.idx() < sites.len()),
            EdgeOwnership::Split {
                owner_u, owner_v, ..
            } => {
                assert!(owner_u.idx() < sites.len());
                assert!(owner_v.idx() < sites.len());
            }
        }
    }

    // Removing the last site needs no rename.
    let s = SiteIdx((sites.len() - 1) as u32);
    let moved = sites.remove(s).unwrap();
    assert_eq!(moved, None);
    nvd.remove_site(&net, s, moved);
    assert_structurally_equal(&net, &nvd, &sites);
}

#[test]
fn site_set_insert_remove_bookkeeping() {
    let net = grid_network(&GridConfig::default(), 1).unwrap();
    let mut sites = SiteSet::new(&net, vec![VertexId(0), VertexId(5), VertexId(9)]).unwrap();
    let idx = sites.insert(&net, VertexId(7)).unwrap();
    assert_eq!(idx, SiteIdx(3));
    assert_eq!(sites.site_at(VertexId(7)), Some(SiteIdx(3)));
    assert!(sites.insert(&net, VertexId(7)).is_err(), "duplicate vertex");
    assert!(
        sites
            .insert(&net, VertexId(net.num_vertices() as u32))
            .is_err(),
        "out of range"
    );

    // Swap-remove moves the last site into the hole.
    let moved = sites.remove(SiteIdx(1)).unwrap();
    assert_eq!(moved, Some(SiteIdx(3)));
    assert_eq!(sites.vertex(SiteIdx(1)), VertexId(7));
    assert_eq!(sites.site_at(VertexId(7)), Some(SiteIdx(1)));
    assert_eq!(sites.site_at(VertexId(5)), None);

    // The set never becomes empty.
    sites.remove(SiteIdx(1)).unwrap();
    sites.remove(SiteIdx(1)).unwrap();
    assert_eq!(sites.len(), 1);
    assert!(sites.remove(SiteIdx(0)).is_err());
}

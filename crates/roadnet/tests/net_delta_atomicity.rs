//! Atomicity of [`NetworkWorld::apply_delta`]: the whole delta is
//! validated before anything is built, so an invalid delta — bad
//! weights, duplicate adds, out-of-range removals, any mix — returns
//! `Err` and the live snapshot stays untouched and fully usable. The
//! same pre-validate-then-commit discipline as `ClusterPlan::split`.

use std::sync::Arc;

use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig, SplitMix64};
use insq_roadnet::{
    EdgeId, EdgeWeight, NetDelta, NetSiteDelta, NetworkVoronoi, NetworkWorld, RoadNetError,
    SiteIdx, SiteSet, VertexId,
};

fn snapshot() -> (Arc<insq_roadnet::RoadNetwork>, NetworkWorld) {
    let net = Arc::new(
        grid_network(
            &GridConfig {
                cols: 8,
                rows: 8,
                ..GridConfig::default()
            },
            5,
        )
        .unwrap(),
    );
    let sites = SiteSet::new(&net, random_site_vertices(&net, 7, 2).unwrap()).unwrap();
    let snap = NetworkWorld::build(Arc::clone(&net), sites);
    (net, snap)
}

/// The snapshot still answers exactly as before: same Arcs, same
/// distances, and a follow-up *valid* delta applies cleanly.
fn assert_untouched_and_usable(snap: &NetworkWorld, net: &Arc<insq_roadnet::RoadNetwork>) {
    assert!(Arc::ptr_eq(&snap.net, net));
    let fresh = NetworkVoronoi::build(net, &snap.sites);
    for v in 0..net.num_vertices() {
        let v = VertexId(v as u32);
        assert_eq!(snap.nvd.dist(v).to_bits(), fresh.dist(v).to_bits());
        assert_eq!(snap.nvd.owner(v), fresh.owner(v));
    }
    let free = (0..net.num_vertices() as u32)
        .map(VertexId)
        .find(|&v| snap.sites.site_at(v).is_none())
        .unwrap();
    let next = snap
        .apply_delta(&NetDelta::insert(vec![free]))
        .expect("a valid delta still applies after a rejected one");
    assert_eq!(next.sites.len(), snap.sites.len() + 1);
}

#[test]
fn mixed_delta_with_one_bad_weight_changes_nothing() {
    let (net, snap) = snapshot();
    let free = (0..net.num_vertices() as u32)
        .map(VertexId)
        .find(|&v| snap.sites.site_at(v).is_none())
        .unwrap();
    // Valid site changes riding with ONE invalid weight entry: the whole
    // delta must be rejected with nothing applied.
    for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let delta = NetDelta::from(NetSiteDelta {
            added: vec![free],
            removed: vec![SiteIdx(0)],
        })
        .with_weights(vec![
            EdgeWeight::scaled(&net, EdgeId(0), 1.5),
            EdgeWeight {
                edge: EdgeId(1),
                len: bad,
            },
        ]);
        let err = snap.apply_delta(&delta);
        assert!(
            matches!(err, Err(RoadNetError::BadEdgeLength { edge: 1, len })
                if len == bad || (len.is_nan() && bad.is_nan())),
            "weight {bad} must reject the whole delta, got {err:?}"
        );
    }
    // Same for a weight naming an out-of-range edge.
    let delta = NetDelta::reweight(vec![EdgeWeight {
        edge: EdgeId(net.num_edges() as u32),
        len: 1.0,
    }]);
    assert!(matches!(
        snap.apply_delta(&delta),
        Err(RoadNetError::EdgeOutOfRange { .. })
    ));
    // And for the same edge named twice in one delta.
    let delta = NetDelta::reweight(vec![
        EdgeWeight::scaled(&net, EdgeId(3), 1.2),
        EdgeWeight::scaled(&net, EdgeId(3), 1.4),
    ]);
    assert!(matches!(
        snap.apply_delta(&delta),
        Err(RoadNetError::DuplicateEdgeChange { edge: 3 })
    ));
    assert_untouched_and_usable(&snap, &net);
}

#[test]
fn duplicate_adds_are_rejected_up_front() {
    let (net, snap) = snapshot();
    let free = (0..net.num_vertices() as u32)
        .map(VertexId)
        .find(|&v| snap.sites.site_at(v).is_none())
        .unwrap();
    // The same vertex twice within one delta.
    let err = snap.apply_delta(&NetDelta::insert(vec![free, free]));
    assert!(matches!(err, Err(RoadNetError::DuplicateSite { .. })));
    // A vertex that already hosts a live (un-removed) site.
    let taken = snap.sites.vertex(SiteIdx(2));
    let err = snap.apply_delta(&NetDelta::insert(vec![taken]));
    assert!(matches!(
        err,
        Err(RoadNetError::DuplicateSite { first: 2, .. })
    ));
    // Both riding with otherwise-valid weights: still rejected whole.
    let err = snap.apply_delta(
        &NetDelta::insert(vec![free, free]).with_weights(vec![EdgeWeight::scaled(
            &net,
            EdgeId(0),
            2.0,
        )]),
    );
    assert!(matches!(err, Err(RoadNetError::DuplicateSite { .. })));
    assert_untouched_and_usable(&snap, &net);
}

#[test]
fn add_to_a_vertex_vacated_in_the_same_delta_succeeds() {
    let (net, snap) = snapshot();
    let vacated = snap.sites.vertex(SiteIdx(1));
    let delta = NetDelta::from(NetSiteDelta {
        added: vec![vacated],
        removed: vec![SiteIdx(1)],
    });
    let next = snap.apply_delta(&delta).expect("vacated vertex is free");
    assert_eq!(next.sites.len(), snap.sites.len());
    assert!(next.sites.site_at(vacated).is_some());
    // But NOT when the removal set leaves the site alive.
    let taken = snap.sites.vertex(SiteIdx(0));
    let delta = NetDelta::from(NetSiteDelta {
        added: vec![taken],
        removed: vec![SiteIdx(1)],
    });
    assert!(matches!(
        snap.apply_delta(&delta),
        Err(RoadNetError::DuplicateSite { .. })
    ));
    assert_untouched_and_usable(&snap, &net);
}

#[test]
fn removals_that_empty_or_miss_are_rejected() {
    let (net, snap) = snapshot();
    let n = snap.sites.len();
    // Out-of-range removal.
    assert!(matches!(
        snap.apply_delta(&NetDelta::remove(vec![SiteIdx(n as u32)])),
        Err(RoadNetError::SiteOutOfRange { .. })
    ));
    // Removing every site (duplicates dedup'd first, so listing one
    // index n times is NOT emptying).
    let all: Vec<SiteIdx> = (0..n as u32).map(SiteIdx).collect();
    assert!(matches!(
        snap.apply_delta(&NetDelta::remove(all)),
        Err(RoadNetError::NoSites)
    ));
    let dup = vec![SiteIdx(0); n + 3];
    let next = snap.apply_delta(&NetDelta::remove(dup)).unwrap();
    assert_eq!(next.sites.len(), n - 1);
    assert_untouched_and_usable(&snap, &net);
}

#[test]
fn fuzzed_weight_bit_patterns_never_panic_or_corrupt() {
    let (net, snap) = snapshot();
    let mut rng = SplitMix64::new(0xF0_22);
    let specials = [
        0.0f64,
        -0.0,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE,
        f64::EPSILON,
        -f64::MIN_POSITIVE,
        f64::MAX,
    ];
    for i in 0..400 {
        let len = if i % 4 == 0 {
            specials[rng.below(specials.len())]
        } else {
            // Raw bit pattern: mostly garbage — NaNs, negatives,
            // subnormals, huge magnitudes.
            f64::from_bits(rng.next_u64())
        };
        let edge = EdgeId(rng.below(net.num_edges()) as u32);
        let delta = NetDelta::reweight(vec![EdgeWeight { edge, len }]);
        match snap.apply_delta(&delta) {
            Ok(next) => {
                // Accepted weights are exactly the finite positive ones,
                // applied verbatim.
                assert!(len.is_finite() && len > 0.0, "accepted bad weight {len}");
                assert_eq!(next.net.edge(edge).len.to_bits(), len.to_bits());
                assert!(Arc::ptr_eq(&next.sites, &snap.sites));
            }
            Err(e) => {
                assert!(
                    !(len.is_finite() && len > 0.0),
                    "rejected good weight {len}: {e}"
                );
            }
        }
    }
    assert_untouched_and_usable(&snap, &net);
}

#[test]
fn index_desync_is_a_real_error_not_a_debug_assert() {
    // Build a snapshot whose NVD deliberately disagrees with its site
    // set (fewer sites), as a corrupted-state stand-in: the next insert
    // must surface SiteIndexDesync instead of silently diverging.
    let net = Arc::new(grid_network(&GridConfig::default(), 13).unwrap());
    let vs = random_site_vertices(&net, 6, 9).unwrap();
    let sites = SiteSet::new(&net, vs.clone()).unwrap();
    let fewer = SiteSet::new(&net, vs[..3].to_vec()).unwrap();
    let nvd = NetworkVoronoi::build(&net, &fewer);
    let snap = NetworkWorld::from_parts(Arc::clone(&net), Arc::new(sites), Arc::new(nvd));

    let free = (0..net.num_vertices() as u32)
        .map(VertexId)
        .find(|&v| snap.sites.site_at(v).is_none())
        .unwrap();
    let err = snap.apply_delta(&NetDelta::insert(vec![free]));
    assert!(
        matches!(
            err,
            Err(RoadNetError::SiteIndexDesync {
                site_set: 6,
                nvd: 3
            })
        ),
        "expected SiteIndexDesync, got {err:?}"
    );
    let msg = err.unwrap_err().to_string();
    assert!(msg.contains('6') && msg.contains('3'), "diagnostic: {msg}");
}

//! Network-constrained trajectories.
//!
//! In Road Network mode the demo's query object "must confine \[to\] the
//! underlying road network" (paper §V). A [`NetTrajectory`] is a vertex
//! walk through the graph, arc-length parameterised in *network* distance,
//! so a simulation can ask "where is the query after travelling `s`?" and
//! get a [`NetPosition`] back.

use crate::astar::astar_distance_checked;
use crate::generators::SplitMix64;
use crate::graph::{EdgeId, RoadNetwork, VertexId};
use crate::position::NetPosition;
use crate::RoadNetError;

/// A walk along network edges with cumulative network arc length.
#[derive(Debug, Clone)]
pub struct NetTrajectory {
    /// The vertices visited, in order (consecutive ones adjacent).
    vertices: Vec<VertexId>,
    /// The edge taken between consecutive vertices.
    edges: Vec<EdgeId>,
    /// `cumulative[i]` = network distance from the start to `vertices[i]`.
    cumulative: Vec<f64>,
}

impl NetTrajectory {
    /// Builds a trajectory from a vertex walk. Consecutive vertices must be
    /// adjacent in the network (the connecting edge is looked up; for
    /// parallel edges the first is used).
    pub fn from_walk(
        net: &RoadNetwork,
        walk: Vec<VertexId>,
    ) -> Result<NetTrajectory, RoadNetError> {
        if walk.len() < 2 {
            return Err(RoadNetError::TrajectoryTooShort { got: walk.len() });
        }
        let mut edges = Vec::with_capacity(walk.len() - 1);
        let mut cumulative = Vec::with_capacity(walk.len());
        cumulative.push(0.0);
        for w in walk.windows(2) {
            let e = net
                .find_edge(w[0], w[1])
                .ok_or(RoadNetError::NotAdjacent { u: w[0], v: w[1] })?;
            edges.push(e);
            let last = *cumulative.last().expect("seeded with 0.0");
            cumulative.push(last + net.edge(e).len);
        }
        Ok(NetTrajectory {
            vertices: walk,
            edges,
            cumulative,
        })
    }

    /// Builds a trajectory by concatenating shortest paths through a list
    /// of waypoint vertices — how the demo lets a user sketch a route.
    pub fn through_waypoints(
        net: &RoadNetwork,
        waypoints: &[VertexId],
    ) -> Result<NetTrajectory, RoadNetError> {
        if waypoints.len() < 2 {
            return Err(RoadNetError::TrajectoryTooShort {
                got: waypoints.len(),
            });
        }
        let mut walk: Vec<VertexId> = vec![waypoints[0]];
        for w in waypoints.windows(2) {
            if w[0] == w[1] {
                continue;
            }
            // Goal-directed search: one target per leg.
            let res = astar_distance_checked(net, w[0], w[1]);
            if res.path.is_empty() {
                return Err(RoadNetError::Disconnected);
            }
            walk.extend_from_slice(&res.path[1..]);
        }
        Self::from_walk(net, walk)
    }

    /// A random shortest-path tour visiting `hops` random waypoints.
    pub fn random_tour(
        net: &RoadNetwork,
        hops: usize,
        seed: u64,
    ) -> Result<NetTrajectory, RoadNetError> {
        let mut rng = SplitMix64::new(seed ^ 0x7EA7);
        let n = net.num_vertices();
        let mut waypoints = Vec::with_capacity(hops.max(2));
        let mut last = usize::MAX;
        while waypoints.len() < hops.max(2) {
            let v = rng.below(n);
            if v != last {
                waypoints.push(VertexId(v as u32));
                last = v;
            }
        }
        Self::through_waypoints(net, &waypoints)
    }

    /// Total network length of the trajectory.
    #[inline]
    pub fn length(&self) -> f64 {
        *self.cumulative.last().expect("non-empty")
    }

    /// The vertex walk.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Position after travelling network distance `s` (clamped to the
    /// trajectory).
    pub fn position(&self, net: &RoadNetwork, s: f64) -> NetPosition {
        let s = s.clamp(0.0, self.length());
        let i = match self.cumulative.binary_search_by(|c| c.total_cmp(&s)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        if i + 1 >= self.vertices.len() {
            return NetPosition::Vertex(*self.vertices.last().expect("non-empty"));
        }
        let e = self.edges[i];
        let rec = net.edge(e);
        let along = s - self.cumulative[i];
        // The walk may traverse the edge u->v or v->u; offsets are stored
        // from the edge's canonical `u`.
        let from = self.vertices[i];
        let offset = if from == rec.u {
            along
        } else {
            rec.len - along
        };
        NetPosition::on_edge(net, e, offset).expect("edge id and offset valid by construction")
    }

    /// Position with wrap-around (looping playback).
    pub fn position_looped(&self, net: &RoadNetwork, s: f64) -> NetPosition {
        self.position(net, s.rem_euclid(self.length()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeRec;
    use insq_geom::Point;

    fn edge(u: u32, v: u32, len: f64) -> EdgeRec {
        EdgeRec {
            u: VertexId(u),
            v: VertexId(v),
            len,
        }
    }

    /// Square loop 0-1-2-3 with distinct edge lengths.
    fn square() -> RoadNetwork {
        RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(2.0, 1.0),
                Point::new(0.0, 1.0),
            ],
            vec![
                edge(0, 1, 2.0),
                edge(1, 2, 1.0),
                edge(2, 3, 2.0),
                edge(3, 0, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn walk_positions() {
        let net = square();
        let t =
            NetTrajectory::from_walk(&net, vec![VertexId(0), VertexId(1), VertexId(2)]).unwrap();
        assert_eq!(t.length(), 3.0);
        assert_eq!(t.position(&net, 0.0), NetPosition::Vertex(VertexId(0)));
        assert_eq!(
            t.position(&net, 1.0),
            NetPosition::OnEdge {
                edge: EdgeId(0),
                offset: 1.0
            }
        );
        assert_eq!(t.position(&net, 2.0), NetPosition::Vertex(VertexId(1)));
        assert_eq!(t.position(&net, 3.0), NetPosition::Vertex(VertexId(2)));
        assert_eq!(t.position(&net, 99.0), NetPosition::Vertex(VertexId(2)));
    }

    #[test]
    fn reverse_edge_traversal_offsets() {
        let net = square();
        // Walk 1 -> 0 traverses edge 0 against its canonical direction.
        let t = NetTrajectory::from_walk(&net, vec![VertexId(1), VertexId(0)]).unwrap();
        let pos = t.position(&net, 0.5);
        assert_eq!(
            pos,
            NetPosition::OnEdge {
                edge: EdgeId(0),
                offset: 1.5
            }
        );
    }

    #[test]
    fn rejects_non_adjacent_walk() {
        let net = square();
        assert!(matches!(
            NetTrajectory::from_walk(&net, vec![VertexId(0), VertexId(2)]),
            Err(RoadNetError::NotAdjacent { .. })
        ));
        assert!(matches!(
            NetTrajectory::from_walk(&net, vec![VertexId(0)]),
            Err(RoadNetError::TrajectoryTooShort { got: 1 })
        ));
    }

    #[test]
    fn waypoints_use_shortest_paths() {
        let net = square();
        // 0 to 2: shortest is 0-3-2 (1+2=3) vs 0-1-2 (2+1=3): tie; either
        // is fine, but the walk must be connected and of length 3.
        let t = NetTrajectory::through_waypoints(&net, &[VertexId(0), VertexId(2)]).unwrap();
        assert_eq!(t.length(), 3.0);
        assert_eq!(t.vertices().first(), Some(&VertexId(0)));
        assert_eq!(t.vertices().last(), Some(&VertexId(2)));
    }

    #[test]
    fn looped_positions_wrap() {
        let net = square();
        let t = NetTrajectory::from_walk(
            &net,
            vec![
                VertexId(0),
                VertexId(1),
                VertexId(2),
                VertexId(3),
                VertexId(0),
            ],
        )
        .unwrap();
        assert_eq!(t.length(), 6.0);
        assert_eq!(t.position_looped(&net, 6.5), t.position(&net, 0.5));
        assert_eq!(t.position_looped(&net, -1.0), t.position(&net, 5.0));
    }

    #[test]
    fn random_tour_is_valid() {
        let net = square();
        let t = NetTrajectory::random_tour(&net, 5, 123).unwrap();
        assert!(t.length() > 0.0);
        // All consecutive vertices adjacent.
        for w in t.vertices().windows(2) {
            assert!(net.find_edge(w[0], w[1]).is_some());
        }
        // Deterministic per seed.
        let again = NetTrajectory::random_tour(&net, 5, 123).unwrap();
        assert_eq!(t.vertices(), again.vertices());
    }
}

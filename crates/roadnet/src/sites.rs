//! Data objects (sites) placed on network vertices, and the delta types
//! that change them — and, since traffic became delta-patchable, the
//! combined [`NetDelta`] that also carries edge re-weights.

use crate::graph::{EdgeWeight, RoadNetwork, VertexId};
use crate::RoadNetError;

/// Index of a site within a [`SiteSet`] (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteIdx(pub u32);

impl SiteIdx {
    /// The site index as a `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SiteIdx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The set of data objects of a road-network MkNN query, each at a distinct
/// vertex (the paper's assumption; objects elsewhere are modelled by
/// subdividing edges first).
#[derive(Debug, Clone)]
pub struct SiteSet {
    vertices: Vec<VertexId>,
    /// Reverse map: `at_vertex[v]` = site index or `u32::MAX`.
    at_vertex: Vec<u32>,
}

impl SiteSet {
    /// Creates a site set. Vertices must be in range and pairwise distinct.
    pub fn new(net: &RoadNetwork, vertices: Vec<VertexId>) -> Result<SiteSet, RoadNetError> {
        if vertices.is_empty() {
            return Err(RoadNetError::NoSites);
        }
        let n = net.num_vertices();
        let mut at_vertex = vec![u32::MAX; n];
        for (i, &v) in vertices.iter().enumerate() {
            if v.idx() >= n {
                return Err(RoadNetError::SiteOutOfRange { site: i });
            }
            if at_vertex[v.idx()] != u32::MAX {
                return Err(RoadNetError::DuplicateSite {
                    first: at_vertex[v.idx()] as usize,
                    second: i,
                });
            }
            at_vertex[v.idx()] = i as u32;
        }
        Ok(SiteSet {
            vertices,
            at_vertex,
        })
    }

    /// Number of sites.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the set is empty (never true once constructed).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The vertex hosting site `s`.
    #[inline]
    pub fn vertex(&self, s: SiteIdx) -> VertexId {
        self.vertices[s.idx()]
    }

    /// All site vertices, indexable by [`SiteIdx`].
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// The site at vertex `v`, if any.
    #[inline]
    pub fn site_at(&self, v: VertexId) -> Option<SiteIdx> {
        let s = self.at_vertex[v.idx()];
        if s == u32::MAX {
            None
        } else {
            Some(SiteIdx(s))
        }
    }

    /// Iterates over `(site, vertex)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SiteIdx, VertexId)> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .map(|(i, &v)| (SiteIdx(i as u32), v))
    }

    /// Adds a site at `v`, returning its (dense, last) index. Fails when
    /// `v` is out of range or already hosts a site.
    pub fn insert(&mut self, net: &RoadNetwork, v: VertexId) -> Result<SiteIdx, RoadNetError> {
        let i = self.vertices.len();
        if v.idx() >= net.num_vertices() {
            return Err(RoadNetError::SiteOutOfRange { site: i });
        }
        if self.at_vertex[v.idx()] != u32::MAX {
            return Err(RoadNetError::DuplicateSite {
                first: self.at_vertex[v.idx()] as usize,
                second: i,
            });
        }
        self.at_vertex[v.idx()] = i as u32;
        self.vertices.push(v);
        Ok(SiteIdx(i as u32))
    }

    /// Removes site `s` with *swap-remove semantics*: when `s` is not the
    /// last site, the last site takes index `s` and its old index is
    /// returned (callers holding per-site state — like a
    /// [`crate::NetworkVoronoi`] — must apply the same rename). The set
    /// never shrinks below one site.
    pub fn remove(&mut self, s: SiteIdx) -> Result<Option<SiteIdx>, RoadNetError> {
        if s.idx() >= self.vertices.len() {
            return Err(RoadNetError::SiteOutOfRange { site: s.idx() });
        }
        if self.vertices.len() == 1 {
            return Err(RoadNetError::NoSites);
        }
        let last = self.vertices.len() - 1;
        self.at_vertex[self.vertices[s.idx()].idx()] = u32::MAX;
        self.vertices.swap_remove(s.idx());
        if s.idx() != last {
            self.at_vertex[self.vertices[s.idx()].idx()] = s.0;
            Ok(Some(SiteIdx(last as u32)))
        } else {
            Ok(None)
        }
    }
}

/// A batch of site insertions and removals over one road network —
/// the network analogue of `insq_index::SiteDelta`, applied as one
/// epoch bump by `insq_server::World::apply`.
///
/// Removals are applied first, in descending pre-delta index order, each
/// with the swap-remove semantics of [`SiteSet::remove`]; additions are
/// appended afterwards in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetSiteDelta {
    /// Vertices gaining a site (must not already host one).
    pub added: Vec<VertexId>,
    /// Site indices to remove, relative to the pre-delta set.
    pub removed: Vec<SiteIdx>,
}

impl NetSiteDelta {
    /// A delta that only inserts.
    pub fn insert(added: Vec<VertexId>) -> NetSiteDelta {
        NetSiteDelta {
            added,
            removed: Vec::new(),
        }
    }

    /// A delta that only removes.
    pub fn remove(removed: Vec<SiteIdx>) -> NetSiteDelta {
        NetSiteDelta {
            added: Vec::new(),
            removed,
        }
    }

    /// Number of individual site changes.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// A combined road-network delta: site changes *and* edge re-weights
/// (traffic), applied together as one epoch bump by
/// `insq_server::World::apply`.
///
/// Application order: edge re-weights first (the NVD is repaired over
/// the new lengths), then site removals, then site additions — so site
/// changes always see post-traffic distances. The whole batch is
/// validated atomically before anything is built: an invalid delta
/// returns `Err` and produces no new epoch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetDelta {
    /// Site insertions and removals.
    pub sites: NetSiteDelta,
    /// Edge re-weights, each edge named at most once per delta.
    pub weights: Vec<EdgeWeight>,
}

impl NetDelta {
    /// A delta that only inserts sites.
    pub fn insert(added: Vec<VertexId>) -> NetDelta {
        NetSiteDelta::insert(added).into()
    }

    /// A delta that only removes sites.
    pub fn remove(removed: Vec<SiteIdx>) -> NetDelta {
        NetSiteDelta::remove(removed).into()
    }

    /// A delta that only re-weights edges.
    pub fn reweight(weights: Vec<EdgeWeight>) -> NetDelta {
        NetDelta {
            sites: NetSiteDelta::default(),
            weights,
        }
    }

    /// This delta with `weights` attached (builder style).
    pub fn with_weights(mut self, weights: Vec<EdgeWeight>) -> NetDelta {
        self.weights = weights;
        self
    }

    /// Number of individual changes (site changes plus re-weights).
    pub fn len(&self) -> usize {
        self.sites.len() + self.weights.len()
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty() && self.weights.is_empty()
    }
}

impl From<NetSiteDelta> for NetDelta {
    fn from(sites: NetSiteDelta) -> NetDelta {
        NetDelta {
            sites,
            weights: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeRec;
    use insq_geom::Point;

    fn net() -> RoadNetwork {
        RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
            ],
            vec![
                EdgeRec {
                    u: VertexId(0),
                    v: VertexId(1),
                    len: 1.0,
                },
                EdgeRec {
                    u: VertexId(1),
                    v: VertexId(2),
                    len: 1.0,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let n = net();
        let sites = SiteSet::new(&n, vec![VertexId(2), VertexId(0)]).unwrap();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites.vertex(SiteIdx(0)), VertexId(2));
        assert_eq!(sites.site_at(VertexId(0)), Some(SiteIdx(1)));
        assert_eq!(sites.site_at(VertexId(1)), None);
        let pairs: Vec<_> = sites.iter().collect();
        assert_eq!(
            pairs,
            vec![(SiteIdx(0), VertexId(2)), (SiteIdx(1), VertexId(0))]
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let n = net();
        assert!(matches!(
            SiteSet::new(&n, vec![]),
            Err(RoadNetError::NoSites)
        ));
        assert!(matches!(
            SiteSet::new(&n, vec![VertexId(7)]),
            Err(RoadNetError::SiteOutOfRange { site: 0 })
        ));
        assert!(matches!(
            SiteSet::new(&n, vec![VertexId(1), VertexId(1)]),
            Err(RoadNetError::DuplicateSite {
                first: 0,
                second: 1
            })
        ));
    }
}

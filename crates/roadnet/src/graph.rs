//! Road network graphs.
//!
//! A road network is a connected, undirected, planar-style graph with
//! positive edge lengths (paper §IV: `G = ⟨V, E⟩`). Vertices carry 2-D
//! coordinates — used by generators, by the demo renderer and for Euclidean
//! lower bounds — but all query semantics are defined by the *network*
//! distance. Data objects (sites) are assumed to sit on vertices, as in the
//! paper ("otherwise we can add them to the set of vertices").
//!
//! Storage is a compact CSR adjacency: two flat arrays shared by every
//! traversal, no per-vertex allocation.

use insq_geom::Point;

use crate::RoadNetError;

/// Identifier of a network vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an undirected network edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An undirected edge record.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeRec {
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// Positive length (network distance contribution).
    pub len: f64,
}

impl EdgeRec {
    /// The endpoint opposite to `w` (`w` must be an endpoint).
    #[inline]
    pub fn other(&self, w: VertexId) -> VertexId {
        if w == self.u {
            self.v
        } else {
            debug_assert_eq!(w, self.v, "vertex not on edge");
            self.u
        }
    }
}

/// One edge re-weight: `edge` takes the new absolute length `len`.
///
/// This is how traffic enters the model: congestion multiplies a
/// free-flow length up, clearing restores it, and a closure is a very
/// large (but finite) weight so the network stays connected. Lengths
/// must satisfy the same invariant as construction: finite and `> 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeWeight {
    /// The edge whose length changes.
    pub edge: EdgeId,
    /// The new length (`len > 0.0 && len.is_finite()`).
    pub len: f64,
}

impl EdgeWeight {
    /// A re-weight scaling the edge's current length in `net` by `factor`.
    pub fn scaled(net: &RoadNetwork, edge: EdgeId, factor: f64) -> EdgeWeight {
        EdgeWeight {
            edge,
            len: net.edge(edge).len * factor,
        }
    }
}

/// A connected undirected road network with positive edge lengths.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    coords: Vec<Point>,
    edges: Vec<EdgeRec>,
    /// CSR offsets into `adj`, one entry per vertex plus a terminator.
    offsets: Vec<u32>,
    /// Flat adjacency: (neighbor, via-edge).
    adj: Vec<(VertexId, EdgeId)>,
}

impl RoadNetwork {
    /// Builds a network from vertex coordinates and undirected edges.
    ///
    /// Validates: at least one vertex, finite coordinates, edge endpoints in
    /// range, positive finite lengths, no self loops, and connectivity.
    /// Parallel edges are permitted (two roads between the same junctions).
    pub fn new(coords: Vec<Point>, edges: Vec<EdgeRec>) -> Result<RoadNetwork, RoadNetError> {
        let n = coords.len();
        if n == 0 {
            return Err(RoadNetError::Empty);
        }
        if let Some(i) = coords.iter().position(|p| !p.is_finite()) {
            return Err(RoadNetError::NonFiniteCoordinate { vertex: i });
        }
        for (i, e) in edges.iter().enumerate() {
            if e.u.idx() >= n || e.v.idx() >= n {
                return Err(RoadNetError::EdgeOutOfRange { edge: i });
            }
            if e.u == e.v {
                return Err(RoadNetError::SelfLoop { edge: i });
            }
            if !(e.len > 0.0 && e.len.is_finite()) {
                return Err(RoadNetError::BadEdgeLength {
                    edge: i,
                    len: e.len,
                });
            }
        }

        // CSR adjacency.
        let mut degree = vec![0u32; n];
        for e in &edges {
            degree[e.u.idx()] += 1;
            degree[e.v.idx()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for d in &degree {
            offsets.push(offsets.last().expect("non-empty") + d);
        }
        let mut adj = vec![(VertexId(0), EdgeId(0)); *offsets.last().expect("non-empty") as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (i, e) in edges.iter().enumerate() {
            adj[cursor[e.u.idx()] as usize] = (e.v, EdgeId(i as u32));
            cursor[e.u.idx()] += 1;
            adj[cursor[e.v.idx()] as usize] = (e.u, EdgeId(i as u32));
            cursor[e.v.idx()] += 1;
        }

        let net = RoadNetwork {
            coords,
            edges,
            offsets,
            adj,
        };
        if !net.is_connected() {
            return Err(RoadNetError::Disconnected);
        }
        Ok(net)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.coords.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The coordinates of a vertex.
    #[inline]
    pub fn coord(&self, v: VertexId) -> Point {
        self.coords[v.idx()]
    }

    /// All vertex coordinates, indexable by [`VertexId`].
    #[inline]
    pub fn coords(&self) -> &[Point] {
        &self.coords
    }

    /// An edge record.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &EdgeRec {
        &self.edges[e.idx()]
    }

    /// All edges, indexable by [`EdgeId`].
    #[inline]
    pub fn edges(&self) -> &[EdgeRec] {
        &self.edges
    }

    /// The (neighbor, via-edge) pairs incident to `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        let lo = self.offsets[v.idx()] as usize;
        let hi = self.offsets[v.idx() + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Vertex degree.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// The Euclidean midpoint of an edge (for rendering only).
    pub fn edge_midpoint(&self, e: EdgeId) -> Point {
        let rec = self.edge(e);
        self.coord(rec.u).midpoint(self.coord(rec.v))
    }

    /// Total length of all edges.
    pub fn total_length(&self) -> f64 {
        self.edges.iter().map(|e| e.len).sum()
    }

    /// Whether the graph is connected (BFS from vertex 0).
    pub fn is_connected(&self) -> bool {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        let mut stack = vec![VertexId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(w, _) in self.neighbors(v) {
                if !seen[w.idx()] {
                    seen[w.idx()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// A copy of the network with the given edge lengths replaced.
    ///
    /// The whole batch is validated *before* anything is copied (see
    /// [`RoadNetwork::validate_reweight`]), so an invalid batch changes
    /// nothing. Topology — vertex set, edge endpoints, CSR adjacency —
    /// is untouched: edge ids, vertex ids and on-edge positions with
    /// offsets within the *old* length remain valid on the re-weighted
    /// network.
    pub fn reweighted(&self, changes: &[EdgeWeight]) -> Result<RoadNetwork, RoadNetError> {
        self.validate_reweight(changes)?;
        let mut net = self.clone();
        for w in changes {
            net.edges[w.edge.idx()].len = w.len;
        }
        Ok(net)
    }

    /// Checks a re-weight batch without applying it: every edge id in
    /// range and named at most once, every new length finite and positive
    /// (the [`RoadNetwork::new`] invariant must hold after every
    /// re-weight).
    pub fn validate_reweight(&self, changes: &[EdgeWeight]) -> Result<(), RoadNetError> {
        for w in changes {
            if w.edge.idx() >= self.edges.len() {
                return Err(RoadNetError::EdgeOutOfRange { edge: w.edge.idx() });
            }
            if !(w.len > 0.0 && w.len.is_finite()) {
                return Err(RoadNetError::BadEdgeLength {
                    edge: w.edge.idx(),
                    len: w.len,
                });
            }
        }
        let mut ids: Vec<u32> = changes.iter().map(|w| w.edge.0).collect();
        ids.sort_unstable();
        for pair in ids.windows(2) {
            if pair[0] == pair[1] {
                return Err(RoadNetError::DuplicateEdgeChange {
                    edge: pair[0] as usize,
                });
            }
        }
        Ok(())
    }

    /// Finds the edge between `u` and `v`, if one exists (the first of any
    /// parallel edges).
    pub fn find_edge(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.neighbors(u)
            .iter()
            .find(|&&(w, _)| w == v)
            .map(|&(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn edge(u: u32, v: u32, len: f64) -> EdgeRec {
        EdgeRec {
            u: VertexId(u),
            v: VertexId(v),
            len,
        }
    }

    fn triangle() -> RoadNetwork {
        RoadNetwork::new(
            vec![pt(0.0, 0.0), pt(1.0, 0.0), pt(0.0, 1.0)],
            vec![edge(0, 1, 1.0), edge(1, 2, 1.5), edge(2, 0, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let net = triangle();
        assert_eq!(net.num_vertices(), 3);
        assert_eq!(net.num_edges(), 3);
        assert_eq!(net.degree(VertexId(0)), 2);
        assert_eq!(net.edge(EdgeId(1)).len, 1.5);
        assert_eq!(net.edge(EdgeId(1)).other(VertexId(1)), VertexId(2));
        assert!((net.total_length() - 3.5).abs() < 1e-12);
        assert_eq!(net.find_edge(VertexId(0), VertexId(2)), Some(EdgeId(2)));
        assert_eq!(net.find_edge(VertexId(0), VertexId(0)), None);
    }

    #[test]
    fn adjacency_symmetry() {
        let net = triangle();
        for v in 0..3u32 {
            for &(w, e) in net.neighbors(VertexId(v)) {
                assert!(net
                    .neighbors(w)
                    .iter()
                    .any(|&(x, e2)| x == VertexId(v) && e2 == e));
            }
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(matches!(
            RoadNetwork::new(vec![], vec![]),
            Err(RoadNetError::Empty)
        ));
        assert!(matches!(
            RoadNetwork::new(vec![pt(0.0, 0.0), pt(1.0, 0.0)], vec![edge(0, 2, 1.0)]),
            Err(RoadNetError::EdgeOutOfRange { edge: 0 })
        ));
        assert!(matches!(
            RoadNetwork::new(vec![pt(0.0, 0.0), pt(1.0, 0.0)], vec![edge(0, 0, 1.0)]),
            Err(RoadNetError::SelfLoop { edge: 0 })
        ));
        assert!(matches!(
            RoadNetwork::new(vec![pt(0.0, 0.0), pt(1.0, 0.0)], vec![edge(0, 1, 0.0)]),
            Err(RoadNetError::BadEdgeLength { edge: 0, .. })
        ));
        assert!(matches!(
            RoadNetwork::new(vec![pt(0.0, 0.0), pt(1.0, 0.0)], vec![edge(0, 1, -2.0)]),
            Err(RoadNetError::BadEdgeLength { edge: 0, .. })
        ));
        // Disconnected: two components.
        assert!(matches!(
            RoadNetwork::new(
                vec![pt(0.0, 0.0), pt(1.0, 0.0), pt(5.0, 5.0), pt(6.0, 5.0)],
                vec![edge(0, 1, 1.0), edge(2, 3, 1.0)],
            ),
            Err(RoadNetError::Disconnected)
        ));
        assert!(matches!(
            RoadNetwork::new(vec![pt(f64::NAN, 0.0)], vec![]),
            Err(RoadNetError::NonFiniteCoordinate { vertex: 0 })
        ));
    }

    #[test]
    fn single_vertex_is_connected() {
        let net = RoadNetwork::new(vec![pt(0.0, 0.0)], vec![]).unwrap();
        assert!(net.is_connected());
        assert_eq!(net.degree(VertexId(0)), 0);
    }

    #[test]
    fn reweighted_patches_lengths_only() {
        let net = triangle();
        let new = net
            .reweighted(&[
                EdgeWeight {
                    edge: EdgeId(1),
                    len: 4.5,
                },
                EdgeWeight::scaled(&net, EdgeId(0), 2.0),
            ])
            .unwrap();
        assert_eq!(new.edge(EdgeId(0)).len, 2.0);
        assert_eq!(new.edge(EdgeId(1)).len, 4.5);
        assert_eq!(new.edge(EdgeId(2)).len, 1.0);
        // Topology untouched; the original keeps its lengths.
        assert_eq!(new.num_edges(), net.num_edges());
        assert_eq!(new.neighbors(VertexId(0)), net.neighbors(VertexId(0)));
        assert_eq!(net.edge(EdgeId(0)).len, 1.0);
    }

    #[test]
    fn reweighted_rejects_bad_batches() {
        let net = triangle();
        let w = |e: u32, len: f64| EdgeWeight {
            edge: EdgeId(e),
            len,
        };
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                matches!(
                    net.reweighted(&[w(0, bad)]),
                    Err(RoadNetError::BadEdgeLength { edge: 0, .. })
                ),
                "length {bad} must be rejected"
            );
        }
        assert!(matches!(
            net.reweighted(&[w(3, 1.0)]),
            Err(RoadNetError::EdgeOutOfRange { edge: 3 })
        ));
        assert!(matches!(
            net.reweighted(&[w(1, 2.0), w(1, 3.0)]),
            Err(RoadNetError::DuplicateEdgeChange { edge: 1 })
        ));
        // A failed batch with one valid and one invalid entry changes
        // nothing (validation happens before any copy).
        assert!(net.reweighted(&[w(0, 9.0), w(9, 1.0)]).is_err());
        assert_eq!(net.edge(EdgeId(0)).len, 1.0);
    }

    #[test]
    fn parallel_edges_allowed() {
        let net = RoadNetwork::new(
            vec![pt(0.0, 0.0), pt(1.0, 0.0)],
            vec![edge(0, 1, 1.0), edge(0, 1, 3.0)],
        )
        .unwrap();
        assert_eq!(net.degree(VertexId(0)), 2);
    }
}

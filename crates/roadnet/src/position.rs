//! Positions on a road network.
//!
//! A moving query object is either exactly at a vertex or part-way along an
//! edge. [`NetPosition`] captures both; every query algorithm takes one.

use insq_geom::Point;

use crate::graph::{EdgeId, RoadNetwork, VertexId};
use crate::RoadNetError;

/// A position on the road network.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NetPosition {
    /// Exactly at a vertex.
    Vertex(VertexId),
    /// On the interior of an edge, `offset` network-units from the edge's
    /// `u` endpoint (`0 < offset < len`).
    OnEdge {
        /// The edge.
        edge: EdgeId,
        /// Distance from `edge.u` along the edge.
        offset: f64,
    },
}

impl NetPosition {
    /// Canonicalises an edge offset: clamps to `[0, len]` and collapses the
    /// endpoints to [`NetPosition::Vertex`]. Returns an error for non-finite
    /// offsets or out-of-range edges.
    pub fn on_edge(
        net: &RoadNetwork,
        edge: EdgeId,
        offset: f64,
    ) -> Result<NetPosition, RoadNetError> {
        if edge.idx() >= net.num_edges() {
            return Err(RoadNetError::EdgeOutOfRange { edge: edge.idx() });
        }
        if !offset.is_finite() {
            return Err(RoadNetError::BadOffset { offset });
        }
        let rec = net.edge(edge);
        let t = offset.clamp(0.0, rec.len);
        if t == 0.0 {
            Ok(NetPosition::Vertex(rec.u))
        } else if t == rec.len {
            Ok(NetPosition::Vertex(rec.v))
        } else {
            Ok(NetPosition::OnEdge { edge, offset: t })
        }
    }

    /// The Euclidean display point of the position (linear interpolation on
    /// the edge's straight-line rendering).
    pub fn to_point(&self, net: &RoadNetwork) -> Point {
        match *self {
            NetPosition::Vertex(v) => net.coord(v),
            NetPosition::OnEdge { edge, offset } => {
                let rec = net.edge(edge);
                let t = (offset / rec.len).clamp(0.0, 1.0);
                net.coord(rec.u).lerp(net.coord(rec.v), t)
            }
        }
    }

    /// Seeds for a Dijkstra search from this position: `(vertex, initial
    /// distance)` pairs. A vertex position seeds itself at 0; an edge
    /// position seeds both endpoints with the partial edge lengths.
    pub fn seeds(&self, net: &RoadNetwork) -> Vec<(VertexId, f64)> {
        let (arr, n) = self.seed_array(net);
        arr[..n].to_vec()
    }

    /// Allocation-free [`NetPosition::seeds`]: writes the seeds into a
    /// fixed-size array and returns how many are valid (1 for a vertex
    /// position, 2 for an edge position). The hot tick path uses this so
    /// seeding a Dijkstra expansion touches no allocator.
    pub fn seed_array(&self, net: &RoadNetwork) -> ([(VertexId, f64); 2], usize) {
        match *self {
            NetPosition::Vertex(v) => ([(v, 0.0), (v, 0.0)], 1),
            NetPosition::OnEdge { edge, offset } => {
                let rec = net.edge(edge);
                ([(rec.u, offset), (rec.v, rec.len - offset)], 2)
            }
        }
    }

    /// The edge this position lies on, if any.
    pub fn edge(&self) -> Option<EdgeId> {
        match *self {
            NetPosition::Vertex(_) => None,
            NetPosition::OnEdge { edge, .. } => Some(edge),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeRec;

    fn path_net() -> RoadNetwork {
        // 0 --2.0-- 1 --3.0-- 2
        RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(5.0, 0.0),
            ],
            vec![
                EdgeRec {
                    u: VertexId(0),
                    v: VertexId(1),
                    len: 2.0,
                },
                EdgeRec {
                    u: VertexId(1),
                    v: VertexId(2),
                    len: 3.0,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn canonicalisation() {
        let net = path_net();
        assert_eq!(
            NetPosition::on_edge(&net, EdgeId(0), 0.0).unwrap(),
            NetPosition::Vertex(VertexId(0))
        );
        assert_eq!(
            NetPosition::on_edge(&net, EdgeId(0), 2.0).unwrap(),
            NetPosition::Vertex(VertexId(1))
        );
        assert_eq!(
            NetPosition::on_edge(&net, EdgeId(0), 0.5).unwrap(),
            NetPosition::OnEdge {
                edge: EdgeId(0),
                offset: 0.5
            }
        );
        // Clamping.
        assert_eq!(
            NetPosition::on_edge(&net, EdgeId(0), 99.0).unwrap(),
            NetPosition::Vertex(VertexId(1))
        );
        assert!(NetPosition::on_edge(&net, EdgeId(5), 0.1).is_err());
        assert!(NetPosition::on_edge(&net, EdgeId(0), f64::NAN).is_err());
    }

    #[test]
    fn to_point_interpolates() {
        let net = path_net();
        let pos = NetPosition::on_edge(&net, EdgeId(1), 1.5).unwrap();
        assert_eq!(pos.to_point(&net), Point::new(3.5, 0.0));
        assert_eq!(
            NetPosition::Vertex(VertexId(2)).to_point(&net),
            Point::new(5.0, 0.0)
        );
    }

    #[test]
    fn seeds_cover_both_endpoints() {
        let net = path_net();
        let pos = NetPosition::on_edge(&net, EdgeId(1), 1.0).unwrap();
        let seeds = pos.seeds(&net);
        assert_eq!(seeds, vec![(VertexId(1), 1.0), (VertexId(2), 2.0)]);
        assert_eq!(
            NetPosition::Vertex(VertexId(0)).seeds(&net),
            vec![(VertexId(0), 0.0)]
        );
    }

    #[test]
    fn seed_array_agrees_with_seeds() {
        let net = path_net();
        for pos in [
            NetPosition::Vertex(VertexId(1)),
            NetPosition::on_edge(&net, EdgeId(0), 0.75).unwrap(),
            NetPosition::on_edge(&net, EdgeId(1), 2.25).unwrap(),
        ] {
            let (arr, n) = pos.seed_array(&net);
            assert_eq!(&arr[..n], pos.seeds(&net).as_slice());
        }
    }
}

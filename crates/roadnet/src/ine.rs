//! Incremental Network Expansion (INE) kNN search.
//!
//! The classical network kNN algorithm (Papadias et al., VLDB'03): expand a
//! Dijkstra wavefront from the query position and report sites in the order
//! their vertices are settled. Expansion stops as soon as `k` sites are
//! found, so the cost is proportional to the size of the region containing
//! the k nearest sites — this is the *recompute* path of every road-network
//! MkNN processor in this system.

use std::cmp::Reverse;

use insq_geom::DistEntry;

use crate::graph::RoadNetwork;
use crate::position::NetPosition;
use crate::scratch::DijkstraScratch;
use crate::sites::{SiteIdx, SiteSet};

/// Statistics of one INE run, used by the benchmark harness to report
/// search effort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IneStats {
    /// Vertices settled by the expansion.
    pub settled: usize,
    /// Heap pushes performed.
    pub pushes: usize,
}

/// The `k` sites nearest to `pos` in network distance, ascending (ties by
/// site index). Returns fewer when the network hosts fewer sites.
pub fn network_knn(
    net: &RoadNetwork,
    sites: &SiteSet,
    pos: NetPosition,
    k: usize,
) -> Vec<(SiteIdx, f64)> {
    network_knn_with_stats(net, sites, pos, k).0
}

/// [`network_knn`] plus expansion statistics.
pub fn network_knn_with_stats(
    net: &RoadNetwork,
    sites: &SiteSet,
    pos: NetPosition,
    k: usize,
) -> (Vec<(SiteIdx, f64)>, IneStats) {
    let mut scratch = DijkstraScratch::new();
    let mut result = Vec::with_capacity(k);
    let stats = network_knn_into(net, sites, &mut scratch, pos, k, &mut result);
    (result, stats)
}

/// Allocation-free [`network_knn_with_stats`]: the expansion runs
/// entirely inside `scratch` and the result lands in `out` (cleared
/// first). In steady state — same network across calls, `out` at
/// capacity — this touches no allocator; it is the per-tick recompute
/// path of the road-network processors.
pub fn network_knn_into(
    net: &RoadNetwork,
    sites: &SiteSet,
    scratch: &mut DijkstraScratch,
    pos: NetPosition,
    k: usize,
    out: &mut Vec<(SiteIdx, f64)>,
) -> IneStats {
    let mut stats = IneStats::default();
    out.clear();
    if k == 0 {
        return stats;
    }
    scratch.begin(net.num_vertices());
    let (seeds, num_seeds) = pos.seed_array(net);
    for &(v, d) in &seeds[..num_seeds] {
        if d < scratch.dist.get(v.idx()) {
            scratch.dist.set(v.idx(), d);
            scratch.heap.push(Reverse(DistEntry { dist: d, id: v }));
            stats.pushes += 1;
        }
    }
    while let Some(Reverse(DistEntry { dist: d, id: u })) = scratch.heap.pop() {
        if d > scratch.dist.get(u.idx()) {
            continue;
        }
        stats.settled += 1;
        if let Some(s) = sites.site_at(u) {
            out.push((s, d));
            if out.len() == k {
                break;
            }
        }
        for &(w, e) in net.neighbors(u) {
            let nd = d + net.edge(e).len;
            if nd < scratch.dist.get(w.idx()) {
                scratch.dist.set(w.idx(), nd);
                scratch.heap.push(Reverse(DistEntry { dist: nd, id: w }));
                stats.pushes += 1;
            }
        }
    }
    // Equal-distance sites may settle in vertex order; normalise ties to
    // ascending site index for deterministic output. The comparator is a
    // total order, so the unstable sort is deterministic (and, unlike the
    // stable one, allocation-free).
    out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    stats
}

/// Distances from `pos` to *every* site (one full Dijkstra) — the
/// brute-force oracle the tests compare against.
pub fn all_site_distances(net: &RoadNetwork, sites: &SiteSet, pos: NetPosition) -> Vec<f64> {
    let dist = crate::dijkstra::distances_from_position(net, pos);
    sites.vertices().iter().map(|&v| dist[v.idx()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeRec, VertexId};
    use insq_geom::Point;

    fn edge(u: u32, v: u32, len: f64) -> EdgeRec {
        EdgeRec {
            u: VertexId(u),
            v: VertexId(v),
            len,
        }
    }

    /// 5x5 unit grid; sites at 9 scattered vertices.
    fn grid() -> (RoadNetwork, SiteSet) {
        let w = 5u32;
        let mut coords = Vec::new();
        let mut edges = Vec::new();
        for r in 0..w {
            for c in 0..w {
                coords.push(Point::new(c as f64, r as f64));
            }
        }
        for r in 0..w {
            for c in 0..w {
                let id = r * w + c;
                if c + 1 < w {
                    edges.push(edge(id, id + 1, 1.0));
                }
                if r + 1 < w {
                    edges.push(edge(id, id + w, 1.0));
                }
            }
        }
        let net = RoadNetwork::new(coords, edges).unwrap();
        let site_vertices = vec![0u32, 4, 7, 10, 12, 17, 20, 23, 24]
            .into_iter()
            .map(VertexId)
            .collect();
        let sites = SiteSet::new(&net, site_vertices).unwrap();
        (net, sites)
    }

    fn brute_knn(
        net: &RoadNetwork,
        sites: &SiteSet,
        pos: NetPosition,
        k: usize,
    ) -> Vec<(SiteIdx, f64)> {
        let d = all_site_distances(net, sites, pos);
        let mut v: Vec<(SiteIdx, f64)> = d
            .into_iter()
            .enumerate()
            .map(|(i, d)| (SiteIdx(i as u32), d))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    #[test]
    fn knn_matches_brute_force_from_vertices() {
        let (net, sites) = grid();
        for v in 0..net.num_vertices() as u32 {
            let pos = NetPosition::Vertex(VertexId(v));
            for k in [1usize, 3, 5, 9] {
                let got = network_knn(&net, &sites, pos, k);
                let want = brute_knn(&net, &sites, pos, k);
                // Distances must agree; at ties the site order is fixed by
                // the final sort, so direct equality holds.
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.1, w.1, "distance mismatch at v={v}, k={k}");
                }
            }
        }
    }

    #[test]
    fn knn_from_edge_positions() {
        let (net, sites) = grid();
        for e in 0..net.num_edges() as u32 {
            let pos = NetPosition::on_edge(&net, crate::graph::EdgeId(e), 0.3).unwrap();
            let got = network_knn(&net, &sites, pos, 4);
            let want = brute_knn(&net, &sites, pos, 4);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn k_exceeding_sites_returns_all() {
        let (net, sites) = grid();
        let got = network_knn(&net, &sites, NetPosition::Vertex(VertexId(12)), 100);
        assert_eq!(got.len(), sites.len());
    }

    #[test]
    fn k_zero() {
        let (net, sites) = grid();
        assert!(network_knn(&net, &sites, NetPosition::Vertex(VertexId(0)), 0).is_empty());
    }

    #[test]
    fn reused_scratch_matches_fresh() {
        let (net, sites) = grid();
        let mut scratch = DijkstraScratch::new();
        let mut out = Vec::new();
        // Interleave vertex and edge queries with varying k through ONE
        // scratch; every answer must be bit-identical to a fresh run.
        for round in 0..3 {
            for v in 0..net.num_vertices() as u32 {
                let pos = NetPosition::Vertex(VertexId(v));
                let k = 1 + ((v as usize + round) % 9);
                let stats = network_knn_into(&net, &sites, &mut scratch, pos, k, &mut out);
                let (want, want_stats) = network_knn_with_stats(&net, &sites, pos, k);
                assert_eq!(out, want, "v={v} k={k} round={round}");
                assert_eq!(stats, want_stats);
            }
            for e in 0..net.num_edges() as u32 {
                let pos = NetPosition::on_edge(&net, crate::graph::EdgeId(e), 0.4).unwrap();
                network_knn_into(&net, &sites, &mut scratch, pos, 3, &mut out);
                assert_eq!(out, network_knn(&net, &sites, pos, 3), "e={e}");
            }
        }
    }

    #[test]
    fn stats_grow_with_k() {
        let (net, sites) = grid();
        let pos = NetPosition::Vertex(VertexId(12));
        let (_, s1) = network_knn_with_stats(&net, &sites, pos, 1);
        let (_, s9) = network_knn_with_stats(&net, &sites, pos, 9);
        assert!(s1.settled <= s9.settled);
        assert!(s1.settled >= 1);
    }
}

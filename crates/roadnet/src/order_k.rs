//! Exact order-k Voronoi structure on road networks.
//!
//! Used to reproduce Fig. 2 of the paper (an order-2 network Voronoi
//! diagram with labelled edge segments) and as the ground-truth oracle for
//! the network INS algorithm: [`order_k_segments`] partitions an edge into
//! maximal segments sharing one kNN *set*, and [`knn_sets_equal`] compares
//! result sets ignoring internal order.
//!
//! The computation is deliberately exact-but-exhaustive (one Dijkstra per
//! site): it exists for verification and small demo networks, not for the
//! query hot path — that is [`crate::ine`]'s and [`crate::subnetwork`]'s
//! job.

use crate::dijkstra::distances_from_vertex;
use crate::graph::{EdgeId, RoadNetwork};
use crate::position::NetPosition;
use crate::sites::{SiteIdx, SiteSet};

/// Distance matrix: `matrix[s][v]` = network distance from site `s` to
/// vertex `v`. O(m · Dijkstra). The oracle substrate for everything else in
/// this module.
pub fn site_distance_matrix(net: &RoadNetwork, sites: &SiteSet) -> Vec<Vec<f64>> {
    sites
        .vertices()
        .iter()
        .map(|&v| distances_from_vertex(net, v))
        .collect()
}

/// Distance from a network position to site `s`, given the matrix.
///
/// For a position interior to edge `(u, v)` the shortest path leaves
/// through `u` or `v` (sites sit on vertices), so the distance is the
/// smaller of the two detours.
pub fn position_site_distance(
    net: &RoadNetwork,
    matrix: &[Vec<f64>],
    pos: NetPosition,
    s: SiteIdx,
) -> f64 {
    match pos {
        NetPosition::Vertex(v) => matrix[s.idx()][v.idx()],
        NetPosition::OnEdge { edge, offset } => {
            let rec = net.edge(edge);
            let via_u = matrix[s.idx()][rec.u.idx()] + offset;
            let via_v = matrix[s.idx()][rec.v.idx()] + (rec.len - offset);
            via_u.min(via_v)
        }
    }
}

/// The exact kNN set of a position, ascending by distance (ties by site
/// index).
pub fn knn_at(
    net: &RoadNetwork,
    matrix: &[Vec<f64>],
    pos: NetPosition,
    k: usize,
) -> Vec<(SiteIdx, f64)> {
    let m = matrix.len();
    let mut v: Vec<(SiteIdx, f64)> = (0..m as u32)
        .map(|i| {
            (
                SiteIdx(i),
                position_site_distance(net, matrix, pos, SiteIdx(i)),
            )
        })
        .collect();
    v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

/// A maximal portion of an edge over which the kNN *set* is constant: the
/// intersection of an order-k Voronoi cell with the edge.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKSegment {
    /// The edge.
    pub edge: EdgeId,
    /// Segment start (offset from the edge's `u`).
    pub from: f64,
    /// Segment end.
    pub to: f64,
    /// The kNN set on the segment, sorted by site index (the paper's
    /// `(6, 7)`-style labels of Fig. 2).
    pub knn_set: Vec<SiteIdx>,
}

/// Partitions edge `e` into maximal order-k segments.
///
/// Along an edge, each site's distance function is the lower envelope of
/// two linear functions (one per endpoint), so the kNN set changes only at
/// crossings of such envelopes. All pairwise crossings are candidate
/// breakpoints; the kNN set is evaluated at segment midpoints.
pub fn order_k_segments(
    net: &RoadNetwork,
    matrix: &[Vec<f64>],
    e: EdgeId,
    k: usize,
) -> Vec<OrderKSegment> {
    let rec = net.edge(e);
    let len = rec.len;
    let m = matrix.len();

    // Each site's distance at offset t is min(du + t, dv + len - t): a
    // piecewise-linear "tent valley" with at most one internal breakpoint.
    // Candidate kNN-set change points: internal breakpoints plus crossings
    // between any two sites' envelopes.
    let envelope = |s: usize, t: f64| -> f64 {
        let du = matrix[s][rec.u.idx()] + t;
        let dv = matrix[s][rec.v.idx()] + (len - t);
        du.min(dv)
    };

    let mut cuts: Vec<f64> = vec![0.0, len];
    #[allow(clippy::needless_range_loop)]
    for s in 0..m {
        // Internal apex of the envelope of site s.
        let du = matrix[s][rec.u.idx()];
        let dv = matrix[s][rec.v.idx()];
        let apex = 0.5 * (len + dv - du);
        if apex > 0.0 && apex < len {
            cuts.push(apex);
        }
    }
    // Crossings between each pair of linear pieces of two different sites:
    // pieces are (du_a + t), (dv_a + len − t) vs (du_b + t), (dv_b + len − t).
    for a in 0..m {
        for b in (a + 1)..m {
            let (dua, dva) = (matrix[a][rec.u.idx()], matrix[a][rec.v.idx()]);
            let (dub, dvb) = (matrix[b][rec.u.idx()], matrix[b][rec.v.idx()]);
            // (du_a + t) == (dv_b + len − t)  =>  t = (dv_b + len − du_a)/2
            let c1 = 0.5 * (dvb + len - dua);
            // (dv_a + len − t) == (du_b + t)  =>  t = (dv_a + len − du_b)/2
            let c2 = 0.5 * (dva + len - dub);
            for c in [c1, c2] {
                if c > 0.0 && c < len {
                    cuts.push(c);
                }
            }
            // Same-slope pieces (du_a + t vs du_b + t) never cross unless
            // equal everywhere; ties are handled by the set evaluation.
        }
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    // Evaluate the kNN set at each interval midpoint and merge equal runs.
    let mut segments: Vec<OrderKSegment> = Vec::new();
    for w in cuts.windows(2) {
        let (from, to) = (w[0], w[1]);
        if to - from < 1e-12 {
            continue;
        }
        let mid = 0.5 * (from + to);
        let mut order: Vec<(SiteIdx, f64)> = (0..m as u32)
            .map(|i| (SiteIdx(i), envelope(i as usize, mid)))
            .collect();
        order.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let mut set: Vec<SiteIdx> = order[..k.min(m)].iter().map(|&(s, _)| s).collect();
        set.sort_unstable();
        match segments.last_mut() {
            Some(last) if last.knn_set == set && (last.to - from).abs() < 1e-12 => {
                last.to = to;
            }
            _ => segments.push(OrderKSegment {
                edge: e,
                from,
                to,
                knn_set: set,
            }),
        }
    }
    segments
}

/// All order-k segments of the network, grouped per edge.
pub fn order_k_diagram(net: &RoadNetwork, matrix: &[Vec<f64>], k: usize) -> Vec<OrderKSegment> {
    (0..net.num_edges() as u32)
        .flat_map(|e| order_k_segments(net, matrix, EdgeId(e), k))
        .collect()
}

/// The MIS of a kNN set per Definition 2, evaluated on the network: the
/// union of the kNN sets of all order-k cells adjacent to the cell of
/// `knn_set`, minus `knn_set`. Two cells are adjacent when their segments
/// share an endpoint (a network order-k "edge" boundary).
pub fn network_mis(
    net: &RoadNetwork,
    matrix: &[Vec<f64>],
    knn_set: &[SiteIdx],
    k: usize,
) -> Vec<SiteIdx> {
    let mut target: Vec<SiteIdx> = knn_set.to_vec();
    target.sort_unstable();
    let segments = order_k_diagram(net, matrix, k);

    // Collect segment boundary points of the target cell, then find other
    // cells sharing them (same edge, touching offsets — or touching across
    // a shared vertex).
    let mut mis: Vec<SiteIdx> = Vec::new();
    for seg in &segments {
        if seg.knn_set != target {
            continue;
        }
        for other in &segments {
            if other.knn_set == target {
                continue;
            }
            if segments_touch(net, seg, other) {
                for &s in &other.knn_set {
                    if !target.contains(&s) {
                        mis.push(s);
                    }
                }
            }
        }
    }
    mis.sort_unstable();
    mis.dedup();
    mis
}

/// Whether two order-k segments share a boundary point (same-edge touching
/// offsets, or endpoints meeting at a common vertex).
fn segments_touch(net: &RoadNetwork, a: &OrderKSegment, b: &OrderKSegment) -> bool {
    const EPS: f64 = 1e-9;
    if a.edge == b.edge && ((a.to - b.from).abs() < EPS || (b.to - a.from).abs() < EPS) {
        return true;
    }
    // Vertex touching: an endpoint of `a` at offset 0/len coincides with an
    // endpoint of `b` at offset 0/len on an edge sharing that vertex.
    let verts_of = |s: &OrderKSegment| {
        let rec = net.edge(s.edge);
        let mut v = Vec::with_capacity(2);
        if s.from < EPS {
            v.push(rec.u);
        }
        if (net.edge(s.edge).len - s.to).abs() < EPS {
            v.push(rec.v);
        }
        v
    };
    let va = verts_of(a);
    if va.is_empty() {
        return false;
    }
    let vb = verts_of(b);
    va.iter().any(|x| vb.contains(x))
}

/// Set equality of kNN results ignoring order (distance ties permute
/// freely).
pub fn knn_sets_equal(a: &[SiteIdx], b: &[SiteIdx]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut a2: Vec<SiteIdx> = a.to_vec();
    let mut b2: Vec<SiteIdx> = b.to_vec();
    a2.sort_unstable();
    b2.sort_unstable();
    a2 == b2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeRec, VertexId};
    use crate::ine::network_knn;
    use insq_geom::Point;

    fn edge(u: u32, v: u32, len: f64) -> EdgeRec {
        EdgeRec {
            u: VertexId(u),
            v: VertexId(v),
            len,
        }
    }

    /// Path 0-1-2-3-4, unit edges, sites at 0, 2, 4.
    fn path() -> (RoadNetwork, SiteSet) {
        let coords = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let edges = (0..4).map(|i| edge(i, i + 1, 1.0)).collect();
        let net = RoadNetwork::new(coords, edges).unwrap();
        let sites = SiteSet::new(&net, vec![VertexId(0), VertexId(2), VertexId(4)]).unwrap();
        (net, sites)
    }

    #[test]
    fn knn_at_matches_ine() {
        let (net, sites) = path();
        let matrix = site_distance_matrix(&net, &sites);
        for e in 0..net.num_edges() as u32 {
            for &t in &[0.1, 0.5, 0.9] {
                let pos = NetPosition::on_edge(&net, EdgeId(e), t).unwrap();
                let oracle = knn_at(&net, &matrix, pos, 2);
                let ine = network_knn(&net, &sites, pos, 2);
                for (o, i) in oracle.iter().zip(&ine) {
                    assert!((o.1 - i.1).abs() < 1e-12, "distance mismatch");
                }
            }
        }
    }

    #[test]
    fn order_1_segments_on_path() {
        let (net, sites) = path();
        let matrix = site_distance_matrix(&net, &sites);
        // Edge 0-1: site 0 owns [0, 1]... site boundary between p0 (at v0)
        // and p1 (at v2) is at global x=1.0, i.e. the far end of edge 0.
        let segs = order_k_segments(&net, &matrix, EdgeId(0), 1);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].knn_set, vec![SiteIdx(0)]);
        // Edge 1-2 (x in [1,2]): the p0/p1 bisector sits exactly at vertex
        // 1 (x = 1), so p1 owns the entire edge.
        let segs = order_k_segments(&net, &matrix, EdgeId(1), 1);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].knn_set, vec![SiteIdx(1)]);
        // Edge 2-3 (x in [2,3]): boundary between p1 (x=2) and p2 (x=4) at
        // x = 3, the far vertex, so p1 owns this edge too.
        let segs = order_k_segments(&net, &matrix, EdgeId(2), 1);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].knn_set, vec![SiteIdx(1)]);
    }

    #[test]
    fn order_2_segments_on_path() {
        let (net, sites) = path();
        let matrix = site_distance_matrix(&net, &sites);
        // Order-2 cells along the path: {p0,p1} for x < 2 (center of p0/p2
        // tie at x=2), then {p1, p0/p2}...
        let all = order_k_diagram(&net, &matrix, 2);
        // Segments must tile each edge exactly.
        for e in 0..net.num_edges() as u32 {
            let segs: Vec<&OrderKSegment> = all.iter().filter(|s| s.edge == EdgeId(e)).collect();
            let total: f64 = segs.iter().map(|s| s.to - s.from).sum();
            assert!((total - net.edge(EdgeId(e)).len).abs() < 1e-9);
        }
        // Every segment's label matches the exact kNN at its midpoint.
        for seg in &all {
            let mid = 0.5 * (seg.from + seg.to);
            let pos = NetPosition::on_edge(&net, seg.edge, mid).unwrap();
            let oracle: Vec<SiteIdx> = knn_at(&net, &matrix, pos, 2)
                .into_iter()
                .map(|(s, _)| s)
                .collect();
            assert!(
                knn_sets_equal(&oracle, &seg.knn_set),
                "segment label mismatch on {:?}",
                seg
            );
        }
    }

    #[test]
    fn mis_on_path_order_2() {
        let (net, sites) = path();
        let _ = sites;
        let matrix = site_distance_matrix(&net, &sites);
        // Cell {p0, p1} is adjacent only to {p1, p2} on a path of 3 sites.
        let mis = network_mis(&net, &matrix, &[SiteIdx(0), SiteIdx(1)], 2);
        assert_eq!(mis, vec![SiteIdx(2)]);
    }

    #[test]
    fn knn_sets_equal_ignores_order() {
        assert!(knn_sets_equal(
            &[SiteIdx(2), SiteIdx(0)],
            &[SiteIdx(0), SiteIdx(2)]
        ));
        assert!(!knn_sets_equal(&[SiteIdx(0)], &[SiteIdx(1)]));
        assert!(!knn_sets_equal(&[SiteIdx(0)], &[SiteIdx(0), SiteIdx(1)]));
    }
}

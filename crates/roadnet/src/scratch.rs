//! Reusable per-query scratch for network expansions.
//!
//! Every Dijkstra-style search in this crate needs the same two
//! transients: a distance array over the vertices and a min-heap
//! frontier. [`DijkstraScratch`] owns both persistently so the per-tick
//! hot paths ([`crate::ine::network_knn_into`],
//! [`crate::subnetwork::restricted_knn_into`]) touch no allocator in
//! steady state: the distance array is a generation-stamped
//! [`DistSlots`] (O(1) logical reset to `+∞`), and the heap keeps its
//! backing buffer across queries.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use insq_geom::{DistEntry, DistSlots};

use crate::graph::VertexId;

/// Persistent scratch for one concurrent network expansion.
///
/// Obtain one with `Default::default()`, keep it alongside the query
/// object, and pass it to every `*_into` search. Reuse across different
/// networks (different vertex counts) is safe — the scratch re-sizes
/// itself — it just costs one reallocation on the first query after the
/// switch.
#[derive(Debug, Clone, Default)]
pub struct DijkstraScratch {
    /// Tentative distances, logically reset to `+∞` per query.
    pub(crate) dist: DistSlots,
    /// The frontier min-heap (via [`Reverse`]); cleared per query, the
    /// backing buffer survives.
    pub(crate) heap: BinaryHeap<Reverse<DistEntry<VertexId>>>,
}

impl DijkstraScratch {
    /// Creates an empty scratch (no backing storage until first use).
    pub fn new() -> DijkstraScratch {
        DijkstraScratch::default()
    }

    /// Readies the scratch for a query over `n` vertices: logically
    /// resets every distance slot to `+∞` and empties the frontier.
    pub(crate) fn begin(&mut self, n: usize) {
        self.dist.begin(n);
        self.heap.clear();
    }
}

//! # insq-roadnet
//!
//! The road-network substrate of the INSQ moving-kNN system (paper §IV):
//!
//! * [`RoadNetwork`] — connected undirected weighted graphs in compact CSR
//!   form, with [`NetPosition`]s on vertices or edge interiors;
//! * [`dijkstra`] — single-source, multi-source and k-label shortest paths;
//! * [`NetworkVoronoi`] — the network Voronoi diagram: vertex/edge
//!   ownership, border ("mid-") points, per-site cell fragments and the
//!   network **Voronoi neighbor sets** the INS is built from;
//! * [`ine`] — Incremental Network Expansion kNN (the recompute path);
//! * [`subnetwork`] — cell-restricted kNN search implementing the
//!   Theorem-2 validation ("we just need to consider the (smaller) road
//!   network formed by the current kNN set and the INS");
//! * [`order_k`] — exact network order-k Voronoi segments (the labelled
//!   edge segments of Fig. 2) and the network MIS of Definition 2;
//! * [`generators`] / [`trajectory`] — synthetic street networks and
//!   network-constrained query trajectories for the demo and benchmarks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod astar;
pub mod dijkstra;
pub mod generators;
pub mod graph;
pub mod ine;
pub mod nvd;
pub mod order_k;
pub mod position;
pub mod scratch;
pub mod sites;
pub mod subnetwork;
pub mod trajectory;
pub mod world;

pub use graph::{EdgeId, EdgeRec, EdgeWeight, RoadNetwork, VertexId};
pub use nvd::{BorderPoint, EdgeFragment, EdgeOwnership, NetworkVoronoi};
pub use position::NetPosition;
pub use scratch::DijkstraScratch;
pub use sites::{NetDelta, NetSiteDelta, SiteIdx, SiteSet};
pub use subnetwork::SiteMask;
pub use trajectory::NetTrajectory;
pub use world::NetworkWorld;

/// Errors from road-network construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum RoadNetError {
    /// The network has no vertices.
    Empty,
    /// A vertex coordinate is NaN or infinite.
    NonFiniteCoordinate {
        /// Offending vertex index.
        vertex: usize,
    },
    /// An edge references a vertex out of range.
    EdgeOutOfRange {
        /// Offending edge index.
        edge: usize,
    },
    /// An edge connects a vertex to itself.
    SelfLoop {
        /// Offending edge index.
        edge: usize,
    },
    /// An edge length is non-positive or non-finite.
    BadEdgeLength {
        /// Offending edge index.
        edge: usize,
        /// The bad length.
        len: f64,
    },
    /// The graph is not connected.
    Disconnected,
    /// A position offset is NaN or infinite.
    BadOffset {
        /// The bad offset.
        offset: f64,
    },
    /// A site set was empty.
    NoSites,
    /// A site references a vertex out of range.
    SiteOutOfRange {
        /// Offending site index.
        site: usize,
    },
    /// Two sites share a vertex.
    DuplicateSite {
        /// Index of the first site at the vertex.
        first: usize,
        /// Index of the duplicate.
        second: usize,
    },
    /// A trajectory needs at least two vertices.
    TrajectoryTooShort {
        /// Number of vertices supplied.
        got: usize,
    },
    /// Two consecutive trajectory vertices are not adjacent.
    NotAdjacent {
        /// First vertex.
        u: VertexId,
        /// Second vertex.
        v: VertexId,
    },
    /// A generator was configured with invalid parameters.
    BadGeneratorConfig {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A re-weight batch names the same edge more than once.
    DuplicateEdgeChange {
        /// The edge id changed twice.
        edge: usize,
    },
    /// The site set and the NVD assigned different indices to a newly
    /// inserted site — the snapshot's parts were assembled inconsistently
    /// (e.g. via [`NetworkWorld::from_parts`] with a mismatched diagram).
    SiteIndexDesync {
        /// Index the site set assigned.
        site_set: usize,
        /// Index the NVD assigned.
        nvd: usize,
    },
}

impl std::fmt::Display for RoadNetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoadNetError::Empty => write!(f, "network has no vertices"),
            RoadNetError::NonFiniteCoordinate { vertex } => {
                write!(f, "non-finite coordinate at vertex {vertex}")
            }
            RoadNetError::EdgeOutOfRange { edge } => {
                write!(f, "edge {edge} references an out-of-range vertex")
            }
            RoadNetError::SelfLoop { edge } => write!(f, "edge {edge} is a self loop"),
            RoadNetError::BadEdgeLength { edge, len } => {
                write!(f, "edge {edge} has invalid length {len}")
            }
            RoadNetError::Disconnected => write!(f, "network is not connected"),
            RoadNetError::BadOffset { offset } => write!(f, "invalid edge offset {offset}"),
            RoadNetError::NoSites => write!(f, "site set is empty"),
            RoadNetError::SiteOutOfRange { site } => {
                write!(f, "site {site} references an out-of-range vertex")
            }
            RoadNetError::DuplicateSite { first, second } => {
                write!(f, "sites {first} and {second} share a vertex")
            }
            RoadNetError::TrajectoryTooShort { got } => {
                write!(f, "trajectory needs at least 2 vertices, got {got}")
            }
            RoadNetError::NotAdjacent { u, v } => {
                write!(f, "trajectory vertices {u} and {v} are not adjacent")
            }
            RoadNetError::BadGeneratorConfig { reason } => {
                write!(f, "bad generator config: {reason}")
            }
            RoadNetError::DuplicateEdgeChange { edge } => {
                write!(f, "edge {edge} re-weighted more than once in one delta")
            }
            RoadNetError::SiteIndexDesync { site_set, nvd } => {
                write!(
                    f,
                    "site set and NVD disagree on a new site's index: {site_set} vs {nvd}"
                )
            }
        }
    }
}

impl std::error::Error for RoadNetError {}

//! Goal-directed shortest paths: A* with the straight-line heuristic.
//!
//! Edge lengths in generated networks equal the Euclidean distance between
//! the (jittered) endpoint coordinates, so the straight-line distance to
//! the goal is an admissible and consistent heuristic and A* returns exact
//! shortest paths while settling far fewer vertices than Dijkstra. Used by
//! interactive pieces (trajectory sketching between waypoints) where only
//! one target matters; the query algorithms proper use the Dijkstra
//! variants in [`crate::dijkstra`].
//!
//! For hand-built networks whose weights are *not* lower-bounded by the
//! coordinate distance the heuristic may be inadmissible;
//! [`astar_distance_checked`] verifies the property edge-by-edge first and
//! falls back to the zero heuristic (plain Dijkstra behaviour) when it
//! does not hold.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::{RoadNetwork, VertexId};

/// Result of an A* run.
#[derive(Debug, Clone, PartialEq)]
pub struct AStarResult {
    /// Shortest-path distance.
    pub distance: f64,
    /// The vertex sequence from source to target.
    pub path: Vec<VertexId>,
    /// Vertices settled (popped with final distance) — the effort measure.
    pub settled: usize,
}

/// A* from `from` to `to` using the straight-line heuristic.
///
/// Exact when every edge length is at least the Euclidean distance between
/// its endpoints (true for all generators in this crate). See
/// [`astar_distance_checked`] for arbitrary networks.
pub fn astar(net: &RoadNetwork, from: VertexId, to: VertexId) -> AStarResult {
    astar_with_heuristic(net, from, to, |v| net.coord(v).distance(net.coord(to)))
}

/// A* that first checks heuristic admissibility (every edge at least as
/// long as its endpoints' straight-line distance) and falls back to the
/// zero heuristic otherwise. The check is O(|E|).
pub fn astar_distance_checked(net: &RoadNetwork, from: VertexId, to: VertexId) -> AStarResult {
    let admissible = net
        .edges()
        .iter()
        .all(|e| e.len + 1e-9 >= net.coord(e.u).distance(net.coord(e.v)));
    if admissible {
        astar(net, from, to)
    } else {
        astar_with_heuristic(net, from, to, |_| 0.0)
    }
}

fn astar_with_heuristic<H: Fn(VertexId) -> f64>(
    net: &RoadNetwork,
    from: VertexId,
    to: VertexId,
    h: H,
) -> AStarResult {
    let n = net.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<VertexId> = vec![VertexId(u32::MAX); n];
    let mut settled_flags = vec![false; n];
    let mut settled = 0usize;
    let mut heap: BinaryHeap<Reverse<(FloatOrd, VertexId)>> = BinaryHeap::new();
    dist[from.idx()] = 0.0;
    heap.push(Reverse((FloatOrd(h(from)), from)));

    while let Some(Reverse((_, u))) = heap.pop() {
        if settled_flags[u.idx()] {
            continue;
        }
        settled_flags[u.idx()] = true;
        settled += 1;
        if u == to {
            break;
        }
        let du = dist[u.idx()];
        for &(w, e) in net.neighbors(u) {
            let nd = du + net.edge(e).len;
            if nd < dist[w.idx()] {
                dist[w.idx()] = nd;
                parent[w.idx()] = u;
                heap.push(Reverse((FloatOrd(nd + h(w)), w)));
            }
        }
    }

    let distance = dist[to.idx()];
    let mut path = Vec::new();
    if distance.is_finite() {
        let mut cur = to;
        path.push(cur);
        while cur != from {
            cur = parent[cur.idx()];
            if cur.0 == u32::MAX {
                path.clear();
                break;
            }
            path.push(cur);
        }
        path.reverse();
    }
    AStarResult {
        distance,
        path,
        settled,
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct FloatOrd(f64);
impl Eq for FloatOrd {}
impl PartialOrd for FloatOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FloatOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_path;
    use crate::generators::{grid_network, GridConfig};
    use crate::graph::EdgeRec;
    use insq_geom::Point;

    #[test]
    fn astar_matches_dijkstra_on_generated_grids() {
        for seed in [1u64, 7, 42] {
            let net = grid_network(
                &GridConfig {
                    cols: 12,
                    rows: 12,
                    jitter: 0.2,
                    diagonal_prob: 0.1,
                    deletion_prob: 0.1,
                    ..GridConfig::default()
                },
                seed,
            )
            .unwrap();
            let n = net.num_vertices() as u32;
            for (a, b) in [(0u32, n - 1), (5, n / 2), (n / 3, 2)] {
                let (want, _) = shortest_path(&net, VertexId(a), VertexId(b));
                let got = astar(&net, VertexId(a), VertexId(b));
                assert!(
                    (got.distance - want).abs() < 1e-9,
                    "seed {seed} {a}->{b}: {} vs {want}",
                    got.distance
                );
                // Path endpoints and adjacency.
                assert_eq!(*got.path.first().unwrap(), VertexId(a));
                assert_eq!(*got.path.last().unwrap(), VertexId(b));
                for w in got.path.windows(2) {
                    assert!(net.find_edge(w[0], w[1]).is_some());
                }
            }
        }
    }

    #[test]
    fn astar_settles_fewer_vertices_than_dijkstra() {
        let net = grid_network(
            &GridConfig {
                cols: 25,
                rows: 25,
                jitter: 0.1,
                diagonal_prob: 0.0,
                deletion_prob: 0.0,
                ..GridConfig::default()
            },
            3,
        )
        .unwrap();
        // Corner to adjacent-corner: the goal-directed search should touch
        // a corridor, not the whole grid.
        let from = VertexId(0);
        let to = VertexId(24);
        let res = astar(&net, from, to);
        assert!(
            res.settled < net.num_vertices() / 2,
            "settled {} of {}",
            res.settled,
            net.num_vertices()
        );
    }

    #[test]
    fn checked_variant_handles_inadmissible_weights() {
        // A network whose "long way" has a short weight: coordinates lie,
        // straight-line heuristic would be inadmissible.
        let net = RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(5.0, 8.0),
            ],
            vec![
                EdgeRec {
                    u: VertexId(0),
                    v: VertexId(1),
                    len: 10.0,
                },
                // Weight far below the Euclidean endpoint distance (9.43).
                EdgeRec {
                    u: VertexId(0),
                    v: VertexId(2),
                    len: 1.0,
                },
                EdgeRec {
                    u: VertexId(2),
                    v: VertexId(1),
                    len: 1.0,
                },
            ],
        )
        .unwrap();
        let res = astar_distance_checked(&net, VertexId(0), VertexId(1));
        assert!((res.distance - 2.0).abs() < 1e-12, "exact via the fallback");
        assert_eq!(res.path, vec![VertexId(0), VertexId(2), VertexId(1)]);
    }

    #[test]
    fn source_equals_target() {
        let net = grid_network(&GridConfig::default(), 1).unwrap();
        let res = astar(&net, VertexId(3), VertexId(3));
        assert_eq!(res.distance, 0.0);
        assert_eq!(res.path, vec![VertexId(3)]);
    }
}

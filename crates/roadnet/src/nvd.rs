//! The network Voronoi diagram (NVD).
//!
//! One multi-source Dijkstra from all sites assigns every vertex to its
//! nearest site; each edge is then either wholly owned by one site or split
//! at a *border point* `b` equidistant from the two endpoint owners — the
//! "mid-point" of the paper's Fig. 2, whose existence drives the proof of
//! Theorem 1 (`MIS ⊆ INS` in road networks).
//!
//! The diagram also yields the network **Voronoi neighbor sets** (sites
//! whose cells share a border point), which is exactly what the network INS
//! is built from, and per-site **cell edge fragments**, which is what the
//! demo renders as the green/yellow edge sets.
//!
//! The diagram is also *incrementally maintainable*
//! ([`NetworkVoronoi::insert_site`] / [`NetworkVoronoi::remove_site`] /
//! [`NetworkVoronoi::reweight_edges`]): a site insertion runs one pruned
//! Dijkstra limited to the new cell, a removal re-expands only the
//! orphaned cell from its boundary, an edge re-weight invalidates and
//! re-expands only the region whose shortest paths crossed the changed
//! edges, and edge ownership plus neighbor sets are re-tallied for
//! exactly the edges incident to re-owned vertices — cost proportional
//! to the changed region, not the network (the delta-epoch path of
//! `insq-server`).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::dijkstra::multi_source;
use crate::graph::{EdgeId, RoadNetwork, VertexId};
use crate::sites::{SiteIdx, SiteSet};

/// Sentinel owner for vertices not (yet) claimed by any site.
const NO_SITE: SiteIdx = SiteIdx(u32::MAX);

/// How a single edge is partitioned between network Voronoi cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeOwnership {
    /// The whole edge lies in one site's cell.
    Whole(SiteIdx),
    /// The edge is split at `border` (network units from the edge's `u`
    /// endpoint): `[0, border]` belongs to `owner_u`, `[border, len]` to
    /// `owner_v`.
    Split {
        /// Owner of the `u`-side fragment.
        owner_u: SiteIdx,
        /// Owner of the `v`-side fragment.
        owner_v: SiteIdx,
        /// Distance of the border point from `u` along the edge.
        border: f64,
    },
}

/// A border point between two adjacent network Voronoi cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BorderPoint {
    /// The edge the border lies on.
    pub edge: EdgeId,
    /// Offset from the edge's `u` endpoint.
    pub offset: f64,
    /// Cell on the `u` side.
    pub site_u: SiteIdx,
    /// Cell on the `v` side.
    pub site_v: SiteIdx,
}

/// A contiguous fragment of an edge belonging to one Voronoi cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeFragment {
    /// The edge.
    pub edge: EdgeId,
    /// Fragment start (offset from `u`).
    pub from: f64,
    /// Fragment end (offset from `u`), `from < to`.
    pub to: f64,
}

/// The network Voronoi diagram of a site set.
#[derive(Debug, Clone)]
pub struct NetworkVoronoi {
    /// Per-vertex distance to the nearest site.
    dist: Vec<f64>,
    /// Per-vertex owner site.
    owner: Vec<SiteIdx>,
    /// Per-edge ownership.
    edge_ownership: Vec<EdgeOwnership>,
    /// Per-site neighbor lists (sorted ascending).
    adj: Vec<Vec<SiteIdx>>,
    /// How many split edges separate each adjacent cell pair (key is the
    /// ordered pair `(min, max)`); a pair is adjacent iff its count > 0.
    border_counts: HashMap<(u32, u32), u32>,
}

/// A candidate in the localized re-expansion heaps, ordered by distance
/// with vertex-id tie-breaks for determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    dist: f64,
    vertex: VertexId,
}

impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.vertex.cmp(&other.vertex))
    }
}

impl NetworkVoronoi {
    /// Builds the NVD with one multi-source Dijkstra plus a linear edge
    /// scan.
    pub fn build(net: &RoadNetwork, sites: &SiteSet) -> NetworkVoronoi {
        let (dist, owner_raw) = multi_source(net, sites.vertices());
        let owner: Vec<SiteIdx> = owner_raw.into_iter().map(SiteIdx).collect();

        let mut edge_ownership = Vec::with_capacity(net.num_edges());
        let mut border_counts: HashMap<(u32, u32), u32> = HashMap::new();
        for rec in net.edges() {
            let ou = owner[rec.u.idx()];
            let ov = owner[rec.v.idx()];
            if ou == ov {
                edge_ownership.push(EdgeOwnership::Whole(ou));
                continue;
            }
            // Border where dist(u) + t == dist(v) + (len - t).
            let border = 0.5 * (rec.len + dist[rec.v.idx()] - dist[rec.u.idx()]);
            let border = border.clamp(0.0, rec.len);
            edge_ownership.push(EdgeOwnership::Split {
                owner_u: ou,
                owner_v: ov,
                border,
            });
            *border_counts.entry(pair_key(ou, ov)).or_insert(0) += 1;
        }

        let mut adj: Vec<Vec<SiteIdx>> = vec![Vec::new(); sites.len()];
        for &(a, b) in border_counts.keys() {
            adj[a as usize].push(SiteIdx(b));
            adj[b as usize].push(SiteIdx(a));
        }
        for list in &mut adj {
            list.sort_unstable();
        }

        NetworkVoronoi {
            dist,
            owner,
            edge_ownership,
            adj,
            border_counts,
        }
    }

    /// Extends the diagram with a new site at `vertex` (which must be the
    /// vertex just appended to the matching [`SiteSet`]): one pruned
    /// Dijkstra claims exactly the new cell — expansion stops wherever the
    /// existing distance is not strictly improved — then edge ownership
    /// and neighbor sets are re-tallied around the claimed vertices.
    /// Returns the new site's index.
    pub fn insert_site(&mut self, net: &RoadNetwork, vertex: VertexId) -> SiteIdx {
        let s = SiteIdx(self.adj.len() as u32);
        self.adj.push(Vec::new());

        let mut changed: Vec<VertexId> = Vec::new();
        let mut heap: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        debug_assert!(
            self.dist[vertex.idx()] > 0.0,
            "site vertices are distinct (SiteSet enforces this)"
        );
        self.dist[vertex.idx()] = 0.0;
        self.owner[vertex.idx()] = s;
        changed.push(vertex);
        heap.push(Reverse(Cand { dist: 0.0, vertex }));
        while let Some(Reverse(Cand { dist: d, vertex: u })) = heap.pop() {
            if d > self.dist[u.idx()] || self.owner[u.idx()] != s {
                continue; // stale, or reclaimed by nothing (ties keep old owners)
            }
            for &(w, e) in net.neighbors(u) {
                let nd = d + net.edge(e).len;
                if nd < self.dist[w.idx()] {
                    if self.owner[w.idx()] != s {
                        changed.push(w);
                    }
                    self.dist[w.idx()] = nd;
                    self.owner[w.idx()] = s;
                    heap.push(Reverse(Cand {
                        dist: nd,
                        vertex: w,
                    }));
                }
            }
        }

        let edges = incident_edges(net, &changed);
        self.refresh_edges(net, &edges);
        s
    }

    /// Removes site `s` from the diagram, re-owning its cell from the
    /// boundary inward with one localized Dijkstra.
    ///
    /// Must be called *after* the matching
    /// [`SiteSet::remove`](crate::SiteSet::remove); pass its return value
    /// as `moved` so vertices of the swap-relabelled last site are re-
    /// tagged. Requires every vertex to reach some surviving site (the
    /// same connectivity assumption as [`NetworkVoronoi::build`]).
    pub fn remove_site(&mut self, net: &RoadNetwork, s: SiteIdx, moved: Option<SiteIdx>) {
        debug_assert_ne!(Some(s), moved, "swap-remove never relabels onto itself");
        let mut orphans: Vec<VertexId> = Vec::new();
        let mut changed: Vec<VertexId> = Vec::new();
        for v in 0..self.owner.len() {
            if self.owner[v] == s {
                self.owner[v] = NO_SITE;
                self.dist[v] = f64::INFINITY;
                orphans.push(VertexId(v as u32));
                changed.push(VertexId(v as u32));
            } else if moved == Some(self.owner[v]) {
                self.owner[v] = s;
                changed.push(VertexId(v as u32));
            }
        }

        // Seed the orphaned region from its boundary, then expand inward.
        let mut heap: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        for &u in &orphans {
            for &(w, e) in net.neighbors(u) {
                if self.owner[w.idx()] == NO_SITE {
                    continue;
                }
                let nd = self.dist[w.idx()] + net.edge(e).len;
                if nd < self.dist[u.idx()] {
                    self.dist[u.idx()] = nd;
                    self.owner[u.idx()] = self.owner[w.idx()];
                    heap.push(Reverse(Cand {
                        dist: nd,
                        vertex: u,
                    }));
                }
            }
        }
        while let Some(Reverse(Cand { dist: d, vertex: u })) = heap.pop() {
            if d > self.dist[u.idx()] {
                continue;
            }
            for &(w, e) in net.neighbors(u) {
                let nd = d + net.edge(e).len;
                if nd < self.dist[w.idx()] {
                    self.dist[w.idx()] = nd;
                    self.owner[w.idx()] = self.owner[u.idx()];
                    heap.push(Reverse(Cand {
                        dist: nd,
                        vertex: w,
                    }));
                }
            }
        }

        let edges = incident_edges(net, &changed);
        self.refresh_edges(net, &edges);

        // Both the removed site's and the relabelled site's old pairs are
        // fully re-tallied above, so the popped tail slot is empty.
        let tail = self.adj.pop().expect("at least one site");
        debug_assert!(tail.is_empty(), "tail adjacency drained by re-tally");
    }

    /// Repairs the diagram after a batch of edge re-weights, seeded from
    /// the changed edges — the traffic analogue of
    /// [`NetworkVoronoi::insert_site`] / [`NetworkVoronoi::remove_site`].
    ///
    /// `self` must be the diagram of `old_net`; `new_net` must share its
    /// topology with only the lengths of `changed` replaced. Three
    /// localized passes:
    ///
    /// 1. *Invalidate.* Vertices whose shortest path runs through an edge
    ///    that got **longer** are found by walking the old shortest-path
    ///    DAG outward from the changed edges — a vertex joins iff its old
    ///    label equals a predecessor's old label plus the old edge length
    ///    — then orphaned exactly like a removed cell. Site vertices keep
    ///    their zero labels, so a cell is never orphaned at its source.
    /// 2. *Re-expand.* One lazy-deletion Dijkstra over the new lengths,
    ///    seeded from the orphan boundary plus the endpoints of every
    ///    edge that got **shorter** (the only entry points for a new,
    ///    shorter path). Every surviving label is still an exact upper
    ///    bound, so the expansion settles only the changed region.
    /// 3. *Re-tally.* Edge ownership and neighbor sets are refreshed for
    ///    edges incident to re-labelled vertices plus the changed edges
    ///    themselves (a border moves with its edge's length even when
    ///    both endpoint labels survive).
    ///
    /// Distances are rebuilt by the same left-to-right `label + len`
    /// accumulation as [`NetworkVoronoi::build`], so on tie-free networks
    /// the repaired diagram is bit-identical to a from-scratch build over
    /// `new_net`; on degenerate (tie-heavy) networks it is exact up to
    /// tie-breaks.
    pub fn reweight_edges(
        &mut self,
        old_net: &RoadNetwork,
        new_net: &RoadNetwork,
        changed: &[EdgeId],
    ) {
        debug_assert_eq!(old_net.num_vertices(), new_net.num_vertices());
        debug_assert_eq!(old_net.num_edges(), new_net.num_edges());

        // Pass 1: orphan every vertex whose old label depends on an
        // increased edge (BFS over the old shortest-path DAG).
        let mut touched = vec![false; old_net.num_vertices()];
        let mut orphans: Vec<VertexId> = Vec::new();
        for &e in changed {
            let old_len = old_net.edge(e).len;
            if new_net.edge(e).len <= old_len {
                continue;
            }
            let rec = old_net.edge(e);
            for (a, b) in [(rec.u, rec.v), (rec.v, rec.u)] {
                if !touched[b.idx()] && self.dist[b.idx()] == self.dist[a.idx()] + old_len {
                    touched[b.idx()] = true;
                    orphans.push(b);
                }
            }
        }
        let mut cursor = 0;
        while cursor < orphans.len() {
            let x = orphans[cursor];
            cursor += 1;
            for &(y, e) in old_net.neighbors(x) {
                if !touched[y.idx()]
                    && self.dist[y.idx()] == self.dist[x.idx()] + old_net.edge(e).len
                {
                    touched[y.idx()] = true;
                    orphans.push(y);
                }
            }
        }
        let mut changed_verts = orphans.clone();
        for &x in &orphans {
            debug_assert!(self.dist[x.idx()] > 0.0, "site vertices keep their labels");
            self.dist[x.idx()] = f64::INFINITY;
            self.owner[x.idx()] = NO_SITE;
        }

        // Pass 2: seed from the orphan boundary and from decreased edges,
        // then settle with one Dijkstra over the new lengths (`touched`
        // now doubles as the re-labelled mark).
        let mut heap: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        for &u in &orphans {
            for &(w, e) in new_net.neighbors(u) {
                if self.owner[w.idx()] == NO_SITE {
                    continue;
                }
                let nd = self.dist[w.idx()] + new_net.edge(e).len;
                if nd < self.dist[u.idx()] {
                    self.dist[u.idx()] = nd;
                    self.owner[u.idx()] = self.owner[w.idx()];
                    heap.push(Reverse(Cand {
                        dist: nd,
                        vertex: u,
                    }));
                }
            }
        }
        for &e in changed {
            if new_net.edge(e).len >= old_net.edge(e).len {
                continue;
            }
            let rec = new_net.edge(e);
            for (a, b) in [(rec.u, rec.v), (rec.v, rec.u)] {
                if self.owner[a.idx()] == NO_SITE {
                    continue;
                }
                let nd = self.dist[a.idx()] + rec.len;
                if nd < self.dist[b.idx()] {
                    if !touched[b.idx()] {
                        touched[b.idx()] = true;
                        changed_verts.push(b);
                    }
                    self.dist[b.idx()] = nd;
                    self.owner[b.idx()] = self.owner[a.idx()];
                    heap.push(Reverse(Cand {
                        dist: nd,
                        vertex: b,
                    }));
                }
            }
        }
        while let Some(Reverse(Cand { dist: d, vertex: u })) = heap.pop() {
            if d > self.dist[u.idx()] {
                continue;
            }
            for &(w, e) in new_net.neighbors(u) {
                let nd = d + new_net.edge(e).len;
                if nd < self.dist[w.idx()] {
                    if !touched[w.idx()] {
                        touched[w.idx()] = true;
                        changed_verts.push(w);
                    }
                    self.dist[w.idx()] = nd;
                    self.owner[w.idx()] = self.owner[u.idx()];
                    heap.push(Reverse(Cand {
                        dist: nd,
                        vertex: w,
                    }));
                }
            }
        }

        // Pass 3: refresh ownership around everything that moved, plus
        // the changed edges themselves.
        let mut edges = incident_edges(new_net, &changed_verts);
        edges.extend_from_slice(changed);
        edges.sort_unstable();
        edges.dedup();
        self.refresh_edges(new_net, &edges);
    }

    /// Recomputes ownership of the given edges from the current
    /// vertex owners/distances, keeping the border-pair counts and the
    /// per-site neighbor lists in sync.
    fn refresh_edges(&mut self, net: &RoadNetwork, edges: &[EdgeId]) {
        for &e in edges {
            if let EdgeOwnership::Split {
                owner_u, owner_v, ..
            } = self.edge_ownership[e.idx()]
            {
                self.release_pair(owner_u, owner_v);
            }
            let rec = net.edge(e);
            let ou = self.owner[rec.u.idx()];
            let ov = self.owner[rec.v.idx()];
            let new = if ou == ov {
                EdgeOwnership::Whole(ou)
            } else {
                debug_assert!(
                    ou != NO_SITE && ov != NO_SITE,
                    "every vertex reaches a surviving site"
                );
                let border = 0.5 * (rec.len + self.dist[rec.v.idx()] - self.dist[rec.u.idx()]);
                self.claim_pair(ou, ov);
                EdgeOwnership::Split {
                    owner_u: ou,
                    owner_v: ov,
                    border: border.clamp(0.0, rec.len),
                }
            };
            self.edge_ownership[e.idx()] = new;
        }
    }

    fn release_pair(&mut self, a: SiteIdx, b: SiteIdx) {
        let key = pair_key(a, b);
        let count = self
            .border_counts
            .get_mut(&key)
            .expect("released pair was counted");
        *count -= 1;
        if *count == 0 {
            self.border_counts.remove(&key);
            let at = self.adj[a.idx()]
                .binary_search(&b)
                .expect("adjacency mirrors counts");
            self.adj[a.idx()].remove(at);
            let at = self.adj[b.idx()]
                .binary_search(&a)
                .expect("adjacency mirrors counts");
            self.adj[b.idx()].remove(at);
        }
    }

    fn claim_pair(&mut self, a: SiteIdx, b: SiteIdx) {
        let count = self.border_counts.entry(pair_key(a, b)).or_insert(0);
        *count += 1;
        if *count == 1 {
            if let Err(at) = self.adj[a.idx()].binary_search(&b) {
                self.adj[a.idx()].insert(at, b);
            }
            if let Err(at) = self.adj[b.idx()].binary_search(&a) {
                self.adj[b.idx()].insert(at, a);
            }
        }
    }

    /// Distance from vertex `v` to its nearest site.
    #[inline]
    pub fn dist(&self, v: VertexId) -> f64 {
        self.dist[v.idx()]
    }

    /// The site owning vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> SiteIdx {
        self.owner[v.idx()]
    }

    /// Ownership of edge `e`.
    #[inline]
    pub fn edge_ownership(&self, e: EdgeId) -> EdgeOwnership {
        self.edge_ownership[e.idx()]
    }

    /// The network Voronoi neighbor set of site `s` (sorted).
    #[inline]
    pub fn neighbors(&self, s: SiteIdx) -> &[SiteIdx] {
        &self.adj[s.idx()]
    }

    /// Whether two sites' cells are adjacent.
    pub fn are_neighbors(&self, a: SiteIdx, b: SiteIdx) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// All border points of the diagram.
    pub fn border_points(&self, net: &RoadNetwork) -> Vec<BorderPoint> {
        let mut out = Vec::new();
        for (i, own) in self.edge_ownership.iter().enumerate() {
            if let EdgeOwnership::Split {
                owner_u,
                owner_v,
                border,
            } = *own
            {
                let _ = net;
                out.push(BorderPoint {
                    edge: EdgeId(i as u32),
                    offset: border,
                    site_u: owner_u,
                    site_v: owner_v,
                });
            }
        }
        out
    }

    /// The edge fragments forming the Voronoi cell of `s` — what the demo
    /// paints in the site's color.
    pub fn cell_fragments(&self, net: &RoadNetwork, s: SiteIdx) -> Vec<EdgeFragment> {
        let mut out = Vec::new();
        for (i, own) in self.edge_ownership.iter().enumerate() {
            let e = EdgeId(i as u32);
            let len = net.edge(e).len;
            match *own {
                EdgeOwnership::Whole(o) if o == s => out.push(EdgeFragment {
                    edge: e,
                    from: 0.0,
                    to: len,
                }),
                EdgeOwnership::Split {
                    owner_u,
                    owner_v,
                    border,
                } => {
                    if owner_u == s && border > 0.0 {
                        out.push(EdgeFragment {
                            edge: e,
                            from: 0.0,
                            to: border,
                        });
                    }
                    if owner_v == s && border < len {
                        out.push(EdgeFragment {
                            edge: e,
                            from: border,
                            to: len,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Total network length of the cell of `s`.
    pub fn cell_length(&self, net: &RoadNetwork, s: SiteIdx) -> f64 {
        self.cell_fragments(net, s)
            .iter()
            .map(|f| f.to - f.from)
            .sum()
    }

    /// Number of sites the diagram currently covers.
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.adj.len()
    }
}

/// Normalised (min, max) key for an unordered cell pair.
#[inline]
fn pair_key(a: SiteIdx, b: SiteIdx) -> (u32, u32) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// The deduplicated edges incident to any of `verts`.
fn incident_edges(net: &RoadNetwork, verts: &[VertexId]) -> Vec<EdgeId> {
    let mut out: Vec<EdgeId> = verts
        .iter()
        .flat_map(|&v| net.neighbors(v).iter().map(|&(_, e)| e))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::distances_from_vertex;
    use crate::graph::EdgeRec;
    use insq_geom::Point;

    fn edge(u: u32, v: u32, len: f64) -> EdgeRec {
        EdgeRec {
            u: VertexId(u),
            v: VertexId(v),
            len,
        }
    }

    /// Path network 0-1-2-3-4 with unit edges, sites at 0 and 4.
    fn path_net() -> (RoadNetwork, SiteSet) {
        let coords = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let edges = (0..4).map(|i| edge(i, i + 1, 1.0)).collect();
        let net = RoadNetwork::new(coords, edges).unwrap();
        let sites = SiteSet::new(&net, vec![VertexId(0), VertexId(4)]).unwrap();
        (net, sites)
    }

    #[test]
    fn path_ownership_and_border() {
        let (net, sites) = path_net();
        let nvd = NetworkVoronoi::build(&net, &sites);
        assert_eq!(nvd.owner(VertexId(0)), SiteIdx(0));
        assert_eq!(nvd.owner(VertexId(1)), SiteIdx(0));
        assert_eq!(nvd.owner(VertexId(3)), SiteIdx(1));
        assert_eq!(nvd.owner(VertexId(4)), SiteIdx(1));
        // Vertex 2 is equidistant; either owner is fine but the edges
        // around it must split consistently: total cell lengths are 2.0
        // each.
        let l0 = nvd.cell_length(&net, SiteIdx(0));
        let l1 = nvd.cell_length(&net, SiteIdx(1));
        assert!((l0 - 2.0).abs() < 1e-12, "cell 0 length {l0}");
        assert!((l1 - 2.0).abs() < 1e-12, "cell 1 length {l1}");
        // Exactly one border point, equidistant from both sites.
        let borders = nvd.border_points(&net);
        assert_eq!(borders.len(), 1);
        let b = borders[0];
        let d0 = distances_from_vertex(&net, VertexId(0));
        let d4 = distances_from_vertex(&net, VertexId(4));
        let rec = net.edge(b.edge);
        let via_u = d0[rec.u.idx()] + b.offset;
        let via_v = d4[rec.v.idx()] + (rec.len - b.offset);
        assert!(
            (via_u - via_v).abs() < 1e-12,
            "border point equidistant: {via_u} vs {via_v}"
        );
        // The two cells are neighbors.
        assert!(nvd.are_neighbors(SiteIdx(0), SiteIdx(1)));
        assert_eq!(nvd.neighbors(SiteIdx(0)), &[SiteIdx(1)]);
    }

    /// 4x4 unit grid; sites at the four corners.
    fn grid_net() -> (RoadNetwork, SiteSet) {
        let mut coords = Vec::new();
        let mut edges = Vec::new();
        let w = 4u32;
        for r in 0..w {
            for c in 0..w {
                coords.push(Point::new(c as f64, r as f64));
            }
        }
        for r in 0..w {
            for c in 0..w {
                let id = r * w + c;
                if c + 1 < w {
                    edges.push(edge(id, id + 1, 1.0));
                }
                if r + 1 < w {
                    edges.push(edge(id, id + w, 1.0));
                }
            }
        }
        let net = RoadNetwork::new(coords, edges).unwrap();
        let sites = SiteSet::new(
            &net,
            vec![VertexId(0), VertexId(3), VertexId(12), VertexId(15)],
        )
        .unwrap();
        (net, sites)
    }

    #[test]
    fn vertices_owned_by_nearest_site() {
        let (net, sites) = grid_net();
        let nvd = NetworkVoronoi::build(&net, &sites);
        let per_site: Vec<Vec<f64>> = sites
            .vertices()
            .iter()
            .map(|&v| distances_from_vertex(&net, v))
            .collect();
        for v in 0..net.num_vertices() {
            let min = per_site.iter().map(|d| d[v]).fold(f64::INFINITY, f64::min);
            assert_eq!(
                per_site[nvd.owner(VertexId(v as u32)).idx()][v],
                min,
                "vertex {v} owner not nearest"
            );
            assert_eq!(nvd.dist(VertexId(v as u32)), min);
        }
    }

    #[test]
    fn cells_partition_total_length() {
        let (net, sites) = grid_net();
        let nvd = NetworkVoronoi::build(&net, &sites);
        let total: f64 = (0..sites.len() as u32)
            .map(|s| nvd.cell_length(&net, SiteIdx(s)))
            .sum();
        assert!(
            (total - net.total_length()).abs() < 1e-9,
            "cells partition the network: {total} vs {}",
            net.total_length()
        );
    }

    #[test]
    fn border_points_are_equidistant() {
        let (net, sites) = grid_net();
        let nvd = NetworkVoronoi::build(&net, &sites);
        let per_site: Vec<Vec<f64>> = sites
            .vertices()
            .iter()
            .map(|&v| distances_from_vertex(&net, v))
            .collect();
        for b in nvd.border_points(&net) {
            let rec = net.edge(b.edge);
            let du = per_site[b.site_u.idx()][rec.u.idx()] + b.offset;
            let dv = per_site[b.site_v.idx()][rec.v.idx()] + (rec.len - b.offset);
            assert!(
                (du - dv).abs() < 1e-9,
                "border on {:?} not equidistant: {du} vs {dv}",
                b.edge
            );
        }
    }

    #[test]
    fn reweight_repair_matches_rebuild_on_path() {
        // 0-1-2-3-4, sites at 0 and 4. Congest edge (1,2), then clear it,
        // then shorten edge (2,3): repair must match a fresh build each
        // time, and a congestion wave must shift the border.
        let (net, sites) = path_net();
        let mut nvd = NetworkVoronoi::build(&net, &sites);
        let mut cur = net.clone();
        for (e, new_len) in [(EdgeId(1), 3.0), (EdgeId(1), 0.8), (EdgeId(2), 0.25)] {
            let next = cur
                .reweighted(&[crate::EdgeWeight {
                    edge: e,
                    len: new_len,
                }])
                .unwrap();
            nvd.reweight_edges(&cur, &next, &[e]);
            let fresh = NetworkVoronoi::build(&next, &sites);
            for v in 0..next.num_vertices() {
                let v = VertexId(v as u32);
                assert_eq!(nvd.dist(v).to_bits(), fresh.dist(v).to_bits(), "{v}");
                assert_eq!(nvd.owner(v), fresh.owner(v), "{v}");
            }
            for i in 0..next.num_edges() {
                assert_eq!(
                    nvd.edge_ownership(EdgeId(i as u32)),
                    fresh.edge_ownership(EdgeId(i as u32)),
                    "edge {i}"
                );
            }
            cur = next;
        }
        // After the congestion wave and the (2,3) shortcut, site 1's
        // cell reaches past vertex 2.
        assert_eq!(nvd.owner(VertexId(2)), SiteIdx(1));
    }

    #[test]
    fn reweight_noop_batch_changes_nothing() {
        let (net, sites) = grid_net();
        let mut nvd = NetworkVoronoi::build(&net, &sites);
        let before = nvd.clone();
        // Same lengths re-asserted: the repair must be an exact no-op.
        let same = net
            .reweighted(&[
                crate::EdgeWeight::scaled(&net, EdgeId(0), 1.0),
                crate::EdgeWeight::scaled(&net, EdgeId(5), 1.0),
            ])
            .unwrap();
        nvd.reweight_edges(&net, &same, &[EdgeId(0), EdgeId(5)]);
        for v in 0..net.num_vertices() {
            let v = VertexId(v as u32);
            assert_eq!(nvd.dist(v).to_bits(), before.dist(v).to_bits());
            assert_eq!(nvd.owner(v), before.owner(v));
        }
        for s in 0..sites.len() as u32 {
            assert_eq!(nvd.neighbors(SiteIdx(s)), before.neighbors(SiteIdx(s)));
        }
    }

    #[test]
    fn neighbor_symmetry() {
        let (net, sites) = grid_net();
        let nvd = NetworkVoronoi::build(&net, &sites);
        for s in 0..sites.len() as u32 {
            for &nb in nvd.neighbors(SiteIdx(s)) {
                assert!(nvd.are_neighbors(nb, SiteIdx(s)));
                assert_ne!(nb, SiteIdx(s));
            }
        }
    }
}

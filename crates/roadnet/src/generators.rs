//! Synthetic road-network generators.
//!
//! The INSQ demo loads real city maps; this reproduction substitutes
//! deterministic synthetic networks with the same structural regimes
//! (documented in DESIGN.md): grid street plans with jittered geometry and
//! optional diagonal shortcuts, and a ring-radial "old town" layout. All
//! generators take an explicit seed and produce connected networks.

use insq_geom::Point;

use crate::graph::{EdgeRec, RoadNetwork, VertexId};
use crate::RoadNetError;

/// Small deterministic PRNG (splitmix64) so generators do not depend on the
/// `rand` crate here; workload-level generation composes this with `rand`.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Parameters for [`grid_network`].
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridConfig {
    /// Number of vertex columns (≥ 2).
    pub cols: u32,
    /// Number of vertex rows (≥ 2).
    pub rows: u32,
    /// Spacing between neighboring vertices.
    pub spacing: f64,
    /// Max positional jitter as a fraction of spacing (0 = perfect grid).
    pub jitter: f64,
    /// Probability of adding a diagonal shortcut in a grid cell.
    pub diagonal_prob: f64,
    /// Probability of deleting a non-bridge grid edge (adds irregularity).
    pub deletion_prob: f64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            cols: 10,
            rows: 10,
            spacing: 1.0,
            jitter: 0.2,
            diagonal_prob: 0.1,
            deletion_prob: 0.1,
        }
    }
}

/// Generates a jittered grid street network.
///
/// Edge lengths are the Euclidean distances between the jittered endpoints;
/// random deletions are only applied where connectivity is preserved (a
/// conservative spanning-tree check keeps the graph connected).
pub fn grid_network(config: &GridConfig, seed: u64) -> Result<RoadNetwork, RoadNetError> {
    if config.cols < 2 || config.rows < 2 {
        return Err(RoadNetError::BadGeneratorConfig {
            reason: "grid needs at least 2x2 vertices",
        });
    }
    let mut rng = SplitMix64::new(seed);
    let (cols, rows) = (config.cols, config.rows);
    let id = |r: u32, c: u32| VertexId(r * cols + c);

    let mut coords = Vec::with_capacity((cols * rows) as usize);
    for r in 0..rows {
        for c in 0..cols {
            let jx = rng.range(-config.jitter, config.jitter) * config.spacing;
            let jy = rng.range(-config.jitter, config.jitter) * config.spacing;
            coords.push(Point::new(
                c as f64 * config.spacing + jx,
                r as f64 * config.spacing + jy,
            ));
        }
    }

    let length = |coords: &[Point], a: VertexId, b: VertexId| -> f64 {
        coords[a.idx()].distance(coords[b.idx()]).max(1e-9)
    };

    let mut edges: Vec<EdgeRec> = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                let (u, v) = (id(r, c), id(r, c + 1));
                edges.push(EdgeRec {
                    u,
                    v,
                    len: length(&coords, u, v),
                });
            }
            if r + 1 < rows {
                let (u, v) = (id(r, c), id(r + 1, c));
                edges.push(EdgeRec {
                    u,
                    v,
                    len: length(&coords, u, v),
                });
            }
        }
    }

    // Random deletions, keeping connectivity: process in random order and
    // drop an edge only if the graph stays connected without it.
    if config.deletion_prob > 0.0 {
        let mut keep = vec![true; edges.len()];
        let n = coords.len();
        for i in 0..edges.len() {
            if rng.next_f64() >= config.deletion_prob {
                continue;
            }
            keep[i] = false;
            if !connected_with(&edges, &keep, n) {
                keep[i] = true;
            }
        }
        let mut kept = Vec::with_capacity(edges.len());
        for (i, e) in edges.iter().enumerate() {
            if keep[i] {
                kept.push(*e);
            }
        }
        edges = kept;
    }

    // Diagonal shortcuts.
    for r in 0..rows - 1 {
        for c in 0..cols - 1 {
            if rng.next_f64() < config.diagonal_prob {
                let (u, v) = if rng.next_f64() < 0.5 {
                    (id(r, c), id(r + 1, c + 1))
                } else {
                    (id(r, c + 1), id(r + 1, c))
                };
                edges.push(EdgeRec {
                    u,
                    v,
                    len: length(&coords, u, v),
                });
            }
        }
    }

    RoadNetwork::new(coords, edges)
}

/// Generates a ring-radial ("spider web") network: `rings` concentric
/// rings of `spokes` vertices plus a center, connected along rings and
/// radially.
pub fn ring_radial_network(
    rings: u32,
    spokes: u32,
    ring_spacing: f64,
    seed: u64,
) -> Result<RoadNetwork, RoadNetError> {
    if rings < 1 || spokes < 3 {
        return Err(RoadNetError::BadGeneratorConfig {
            reason: "ring-radial needs >= 1 ring and >= 3 spokes",
        });
    }
    let mut rng = SplitMix64::new(seed);
    let mut coords = vec![Point::new(0.0, 0.0)]; // center = vertex 0
    for ring in 1..=rings {
        let radius = ring as f64 * ring_spacing;
        for s in 0..spokes {
            let jitter = rng.range(-0.05, 0.05);
            let ang = std::f64::consts::TAU * (s as f64 / spokes as f64 + jitter);
            coords.push(Point::new(radius * ang.cos(), radius * ang.sin()));
        }
    }
    let vid = |ring: u32, s: u32| VertexId(1 + (ring - 1) * spokes + (s % spokes));
    let mut edges = Vec::new();
    let length = |coords: &[Point], a: VertexId, b: VertexId| -> f64 {
        coords[a.idx()].distance(coords[b.idx()]).max(1e-9)
    };
    // Ring edges.
    for ring in 1..=rings {
        for s in 0..spokes {
            let (u, v) = (vid(ring, s), vid(ring, s + 1));
            edges.push(EdgeRec {
                u,
                v,
                len: length(&coords, u, v),
            });
        }
    }
    // Radial edges (center to first ring, then ring to ring).
    for s in 0..spokes {
        edges.push(EdgeRec {
            u: VertexId(0),
            v: vid(1, s),
            len: length(&coords, VertexId(0), vid(1, s)),
        });
        for ring in 1..rings {
            let (u, v) = (vid(ring, s), vid(ring + 1, s));
            edges.push(EdgeRec {
                u,
                v,
                len: length(&coords, u, v),
            });
        }
    }
    RoadNetwork::new(coords, edges)
}

/// Chooses `count` distinct vertices as data-object (site) locations.
pub fn random_site_vertices(
    net: &RoadNetwork,
    count: usize,
    seed: u64,
) -> Result<Vec<VertexId>, RoadNetError> {
    let n = net.num_vertices();
    if count == 0 || count > n {
        return Err(RoadNetError::BadGeneratorConfig {
            reason: "site count must be in 1..=num_vertices",
        });
    }
    // Partial Fisher-Yates.
    let mut rng = SplitMix64::new(seed ^ 0xC0FFEE);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in 0..count {
        let j = i + rng.below(n - i);
        ids.swap(i, j);
    }
    Ok(ids[..count].iter().map(|&i| VertexId(i)).collect())
}

fn connected_with(edges: &[EdgeRec], keep: &[bool], n: usize) -> bool {
    // Union-find connectivity check.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    let mut components = n as u32;
    for (i, e) in edges.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let (ru, rv) = (find(&mut parent, e.u.0), find(&mut parent, e.v.0));
        if ru != rv {
            parent[ru as usize] = rv;
            components -= 1;
        }
    }
    components == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_default_is_connected() {
        let net = grid_network(&GridConfig::default(), 42).unwrap();
        assert_eq!(net.num_vertices(), 100);
        assert!(net.is_connected());
        assert!(net.num_edges() > 100, "enough edges: {}", net.num_edges());
    }

    #[test]
    fn grid_no_jitter_no_extras() {
        let cfg = GridConfig {
            cols: 3,
            rows: 3,
            spacing: 2.0,
            jitter: 0.0,
            diagonal_prob: 0.0,
            deletion_prob: 0.0,
        };
        let net = grid_network(&cfg, 1).unwrap();
        assert_eq!(net.num_vertices(), 9);
        assert_eq!(net.num_edges(), 12);
        // Unit spacing scaled by 2.
        for e in net.edges() {
            assert!((e.len - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn grid_deterministic_per_seed() {
        let a = grid_network(&GridConfig::default(), 7).unwrap();
        let b = grid_network(&GridConfig::default(), 7).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        for (x, y) in a.coords().iter().zip(b.coords()) {
            assert_eq!(x, y);
        }
        let c = grid_network(&GridConfig::default(), 8).unwrap();
        // Overwhelmingly likely to differ.
        let same = a.coords().iter().zip(c.coords()).all(|(x, y)| x == y);
        assert!(!same, "different seeds should give different jitter");
    }

    #[test]
    fn grid_rejects_tiny() {
        let cfg = GridConfig {
            cols: 1,
            rows: 5,
            ..GridConfig::default()
        };
        assert!(matches!(
            grid_network(&cfg, 0),
            Err(RoadNetError::BadGeneratorConfig { .. })
        ));
    }

    #[test]
    fn ring_radial_structure() {
        let net = ring_radial_network(3, 8, 1.0, 5).unwrap();
        assert_eq!(net.num_vertices(), 1 + 3 * 8);
        assert!(net.is_connected());
        // Center has `spokes` incident edges.
        assert_eq!(net.degree(VertexId(0)), 8);
    }

    #[test]
    fn random_sites_distinct_and_in_range() {
        let net = grid_network(&GridConfig::default(), 3).unwrap();
        let sites = random_site_vertices(&net, 20, 9).unwrap();
        assert_eq!(sites.len(), 20);
        let mut sorted = sites.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "sites must be distinct");
        assert!(sites.iter().all(|v| v.idx() < net.num_vertices()));
        // Deterministic.
        let again = random_site_vertices(&net, 20, 9).unwrap();
        assert_eq!(sites, again);
        // Errors.
        assert!(random_site_vertices(&net, 0, 1).is_err());
        assert!(random_site_vertices(&net, 1000, 1).is_err());
    }
}

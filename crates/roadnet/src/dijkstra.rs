//! Shortest-path computations: single-source, multi-source and k-label
//! Dijkstra over [`RoadNetwork`]s.
//!
//! All variants share the same binary-heap skeleton with lazily discarded
//! stale entries — simpler and in practice faster than a decrease-key heap
//! for the sparse graphs road networks are.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use insq_geom::DistEntry;

use crate::graph::{RoadNetwork, VertexId};
use crate::position::NetPosition;

/// Distances from a single source vertex to every vertex.
pub fn distances_from_vertex(net: &RoadNetwork, source: VertexId) -> Vec<f64> {
    distances_from_seeds(net, &[(source, 0.0)])
}

/// Distances from a network position to every vertex.
pub fn distances_from_position(net: &RoadNetwork, pos: NetPosition) -> Vec<f64> {
    distances_from_seeds(net, &pos.seeds(net))
}

/// Dijkstra from a set of `(vertex, initial distance)` seeds.
pub fn distances_from_seeds(net: &RoadNetwork, seeds: &[(VertexId, f64)]) -> Vec<f64> {
    let n = net.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap: BinaryHeap<Reverse<DistEntry<VertexId>>> = BinaryHeap::new();
    for &(v, d) in seeds {
        if d < dist[v.idx()] {
            dist[v.idx()] = d;
            heap.push(Reverse(DistEntry { dist: d, id: v }));
        }
    }
    while let Some(Reverse(DistEntry { dist: d, id: u })) = heap.pop() {
        if d > dist[u.idx()] {
            continue; // stale
        }
        for &(w, e) in net.neighbors(u) {
            let nd = d + net.edge(e).len;
            if nd < dist[w.idx()] {
                dist[w.idx()] = nd;
                heap.push(Reverse(DistEntry { dist: nd, id: w }));
            }
        }
    }
    dist
}

/// Network distance between two positions (via Dijkstra; `f64::INFINITY`
/// never occurs on a connected network).
pub fn distance_between(net: &RoadNetwork, from: NetPosition, to: NetPosition) -> f64 {
    // Special case: both on the same edge — the direct along-edge path
    // competes with paths through the endpoints.
    let direct = match (from, to) {
        (
            NetPosition::OnEdge {
                edge: e1,
                offset: o1,
            },
            NetPosition::OnEdge {
                edge: e2,
                offset: o2,
            },
        ) if e1 == e2 => Some((o1 - o2).abs()),
        _ => None,
    };
    let dist = distances_from_position(net, from);
    let via_vertices = to
        .seeds(net)
        .into_iter()
        .map(|(v, d)| dist[v.idx()] + d)
        .fold(f64::INFINITY, f64::min);
    match direct {
        Some(d) => d.min(via_vertices),
        None => via_vertices,
    }
}

/// Shortest path (distance and vertex sequence) between two vertices.
pub fn shortest_path(net: &RoadNetwork, from: VertexId, to: VertexId) -> (f64, Vec<VertexId>) {
    let n = net.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<VertexId> = vec![VertexId(u32::MAX); n];
    let mut heap: BinaryHeap<Reverse<DistEntry<VertexId>>> = BinaryHeap::new();
    dist[from.idx()] = 0.0;
    heap.push(Reverse(DistEntry {
        dist: 0.0,
        id: from,
    }));
    while let Some(Reverse(DistEntry { dist: d, id: u })) = heap.pop() {
        if d > dist[u.idx()] {
            continue;
        }
        if u == to {
            break;
        }
        for &(w, e) in net.neighbors(u) {
            let nd = d + net.edge(e).len;
            if nd < dist[w.idx()] {
                dist[w.idx()] = nd;
                parent[w.idx()] = u;
                heap.push(Reverse(DistEntry { dist: nd, id: w }));
            }
        }
    }
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = parent[cur.idx()];
        if cur.0 == u32::MAX {
            return (f64::INFINITY, Vec::new()); // unreachable (disconnected)
        }
        path.push(cur);
    }
    path.reverse();
    (dist[to.idx()], path)
}

/// Multi-source Dijkstra: every vertex gets the distance to — and the label
/// of — its nearest source. Returns `(dist, owner)` arrays; `owner[v]` is
/// the index into `sources` (ties go to the source settling first, i.e. the
/// smaller vertex id at equal distance).
pub fn multi_source(net: &RoadNetwork, sources: &[VertexId]) -> (Vec<f64>, Vec<u32>) {
    let n = net.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut owner = vec![u32::MAX; n];
    let mut heap: BinaryHeap<Reverse<(DistEntry<VertexId>, u32)>> = BinaryHeap::new();
    for (i, &v) in sources.iter().enumerate() {
        // With duplicate source vertices the first listed wins.
        if dist[v.idx()] > 0.0 || owner[v.idx()] == u32::MAX {
            dist[v.idx()] = 0.0;
            owner[v.idx()] = i as u32;
            heap.push(Reverse((DistEntry { dist: 0.0, id: v }, i as u32)));
        }
    }
    while let Some(Reverse((DistEntry { dist: d, id: u }, label))) = heap.pop() {
        if d > dist[u.idx()] || owner[u.idx()] != label {
            continue;
        }
        for &(w, e) in net.neighbors(u) {
            let nd = d + net.edge(e).len;
            if nd < dist[w.idx()] {
                dist[w.idx()] = nd;
                owner[w.idx()] = label;
                heap.push(Reverse((DistEntry { dist: nd, id: w }, label)));
            }
        }
    }
    (dist, owner)
}

/// k-label Dijkstra: for every vertex, the `k` nearest sources with their
/// distances, ascending. The workhorse behind exact network order-k
/// Voronoi computations.
///
/// Complexity `O(k · (|E| + |V|) log(k |V|))`.
pub fn k_label_dijkstra(net: &RoadNetwork, sources: &[VertexId], k: usize) -> Vec<Vec<(u32, f64)>> {
    let n = net.num_vertices();
    let mut labels: Vec<Vec<(u32, f64)>> = vec![Vec::with_capacity(k); n];
    let mut heap: BinaryHeap<Reverse<(DistEntry<VertexId>, u32)>> = BinaryHeap::new();
    for (i, &v) in sources.iter().enumerate() {
        heap.push(Reverse((DistEntry { dist: 0.0, id: v }, i as u32)));
    }
    while let Some(Reverse((DistEntry { dist: d, id: u }, label))) = heap.pop() {
        let lab = &mut labels[u.idx()];
        if lab.len() >= k || lab.iter().any(|&(s, _)| s == label) {
            continue;
        }
        lab.push((label, d));
        for &(w, e) in net.neighbors(u) {
            let nd = d + net.edge(e).len;
            let wl = &labels[w.idx()];
            if wl.len() < k && !wl.iter().any(|&(s, _)| s == label) {
                heap.push(Reverse((DistEntry { dist: nd, id: w }, label)));
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeRec;
    use insq_geom::Point;

    fn edge(u: u32, v: u32, len: f64) -> EdgeRec {
        EdgeRec {
            u: VertexId(u),
            v: VertexId(v),
            len,
        }
    }

    /// A 3x3 grid with unit edge lengths; vertex id = row*3 + col.
    fn grid() -> RoadNetwork {
        let mut coords = Vec::new();
        let mut edges = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                coords.push(Point::new(c as f64, r as f64));
            }
        }
        for r in 0..3u32 {
            for c in 0..3u32 {
                let id = r * 3 + c;
                if c + 1 < 3 {
                    edges.push(edge(id, id + 1, 1.0));
                }
                if r + 1 < 3 {
                    edges.push(edge(id, id + 3, 1.0));
                }
            }
        }
        RoadNetwork::new(coords, edges).unwrap()
    }

    #[test]
    fn single_source_grid() {
        let net = grid();
        let d = distances_from_vertex(&net, VertexId(0));
        // Manhattan distances on the unit grid.
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(d[r * 3 + c], (r + c) as f64, "vertex ({r},{c})");
            }
        }
    }

    #[test]
    fn distance_from_edge_position() {
        let net = grid();
        // Position 0.3 along edge 0-1 (edge 0 connects v0 and v1).
        let e = net.find_edge(VertexId(0), VertexId(1)).unwrap();
        let pos = NetPosition::on_edge(&net, e, 0.3).unwrap();
        let d = distances_from_position(&net, pos);
        assert!((d[0] - 0.3).abs() < 1e-12);
        assert!((d[1] - 0.7).abs() < 1e-12);
        assert!((d[2] - 1.7).abs() < 1e-12);
        assert!((d[3] - 1.3).abs() < 1e-12);
    }

    #[test]
    fn distance_between_positions_same_edge() {
        let net = grid();
        let e = net.find_edge(VertexId(0), VertexId(1)).unwrap();
        let a = NetPosition::on_edge(&net, e, 0.2).unwrap();
        let b = NetPosition::on_edge(&net, e, 0.9).unwrap();
        assert!((distance_between(&net, a, b) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn shortest_path_reconstruction() {
        let net = grid();
        let (d, path) = shortest_path(&net, VertexId(0), VertexId(8));
        assert_eq!(d, 4.0);
        assert_eq!(path.len(), 5);
        assert_eq!(path[0], VertexId(0));
        assert_eq!(path[4], VertexId(8));
        // Consecutive path vertices are adjacent.
        for w in path.windows(2) {
            assert!(net.find_edge(w[0], w[1]).is_some());
        }
    }

    #[test]
    fn multi_source_ownership() {
        let net = grid();
        // Sources at opposite corners 0 and 8.
        let (dist, owner) = multi_source(&net, &[VertexId(0), VertexId(8)]);
        assert_eq!(owner[0], 0);
        assert_eq!(owner[8], 1);
        assert_eq!(dist[0], 0.0);
        assert_eq!(dist[8], 0.0);
        // Center vertex 4 is equidistant (2.0); either owner acceptable.
        assert_eq!(dist[4], 2.0);
        // Every vertex owned by its true nearest source.
        let d0 = distances_from_vertex(&net, VertexId(0));
        let d8 = distances_from_vertex(&net, VertexId(8));
        for v in 0..9 {
            assert_eq!(dist[v], d0[v].min(d8[v]));
            if d0[v] < d8[v] {
                assert_eq!(owner[v], 0);
            } else if d8[v] < d0[v] {
                assert_eq!(owner[v], 1);
            }
        }
    }

    #[test]
    fn k_label_matches_brute_force() {
        let net = grid();
        let sources = [VertexId(0), VertexId(2), VertexId(6), VertexId(8)];
        let k = 3;
        let labels = k_label_dijkstra(&net, &sources, k);
        let per_source: Vec<Vec<f64>> = sources
            .iter()
            .map(|&s| distances_from_vertex(&net, s))
            .collect();
        for v in 0..net.num_vertices() {
            let mut brute: Vec<(u32, f64)> = (0..sources.len() as u32)
                .map(|i| (i, per_source[i as usize][v]))
                .collect();
            brute.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            brute.truncate(k);
            let got = &labels[v];
            assert_eq!(got.len(), k);
            // Distances must match exactly; label order may differ on ties.
            for i in 0..k {
                assert_eq!(got[i].1, brute[i].1, "vertex {v} rank {i}");
            }
            let got_set: std::collections::BTreeSet<u32> = got.iter().map(|&(s, _)| s).collect();
            // On ties the label sets can differ; distances decide. Check
            // multiset of distances only, plus set size.
            assert_eq!(got_set.len(), k);
        }
    }

    #[test]
    fn weighted_path_vs_grid() {
        // A shortcut edge changes the shortest path.
        let net = RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
            ],
            vec![edge(0, 1, 5.0), edge(1, 2, 5.0), edge(0, 2, 3.0)],
        )
        .unwrap();
        let d = distances_from_vertex(&net, VertexId(0));
        assert_eq!(d[2], 3.0);
        assert_eq!(d[1], 5.0); // not 8.0 via the shortcut
        let (d02, path) = shortest_path(&net, VertexId(0), VertexId(2));
        assert_eq!(d02, 3.0);
        assert_eq!(path, vec![VertexId(0), VertexId(2)]);
    }
}

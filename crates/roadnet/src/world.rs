//! The road-network world snapshot: network + sites + NVD as one value.
//!
//! [`NetworkWorld`] is the road-network equivalent of a
//! `insq_index::VorTree`: everything a query processor needs to answer
//! moving kNN queries, bundled so the layers above (the generic INS
//! processor in `insq-core`, the epoch-versioned `World` in
//! `insq-server`) can treat every space through one index handle.
//!
//! Data-object updates replace `sites`/`nvd`; the network itself is
//! assumed fixed across epochs (the paper's setting: POIs change, streets
//! do not), so it is shared via `Arc` and delta epochs never copy it.

use std::sync::Arc;

use crate::graph::RoadNetwork;
use crate::nvd::NetworkVoronoi;
use crate::sites::{NetSiteDelta, SiteSet};
use crate::RoadNetError;

/// A road-network snapshot: the (stable) network plus the per-epoch site
/// set and its precomputed network Voronoi diagram.
#[derive(Debug, Clone)]
pub struct NetworkWorld {
    /// The road network (shared unchanged across epochs).
    pub net: Arc<RoadNetwork>,
    /// The data objects of this epoch.
    pub sites: Arc<SiteSet>,
    /// The network Voronoi diagram of `sites` over `net`.
    pub nvd: Arc<NetworkVoronoi>,
}

impl NetworkWorld {
    /// Builds a snapshot from a network and site set, computing the NVD.
    pub fn build(net: Arc<RoadNetwork>, sites: SiteSet) -> NetworkWorld {
        let nvd = NetworkVoronoi::build(&net, &sites);
        NetworkWorld {
            net,
            sites: Arc::new(sites),
            nvd: Arc::new(nvd),
        }
    }

    /// Bundles already-shared parts (the NVD must have been built over
    /// exactly this network and site set).
    pub fn from_parts(
        net: Arc<RoadNetwork>,
        sites: Arc<SiteSet>,
        nvd: Arc<NetworkVoronoi>,
    ) -> NetworkWorld {
        NetworkWorld { net, sites, nvd }
    }

    /// The next epoch's snapshot: same network, new site set (the server
    /// half of a data-object update).
    pub fn with_sites(&self, sites: SiteSet) -> NetworkWorld {
        NetworkWorld::build(Arc::clone(&self.net), sites)
    }

    /// Number of data-object sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the snapshot holds no sites (never true once built — a
    /// [`SiteSet`] is non-empty by construction).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The next epoch's snapshot produced *incrementally*: the network is
    /// shared untouched via `Arc`, the site set and NVD are cloned and
    /// patched per delta entry (removals first, descending pre-delta
    /// indices with swap-remove renames, then insertions in order). The
    /// original snapshot is never modified; on error it stays the live
    /// one.
    pub fn apply_delta(&self, delta: &NetSiteDelta) -> Result<NetworkWorld, RoadNetError> {
        let mut sites = (*self.sites).clone();
        let mut nvd = (*self.nvd).clone();
        let mut removed = delta.removed.clone();
        removed.sort_unstable();
        removed.dedup();
        for &s in removed.iter().rev() {
            let moved = sites.remove(s)?;
            nvd.remove_site(&self.net, s, moved);
        }
        for &v in &delta.added {
            let idx = sites.insert(&self.net, v)?;
            let got = nvd.insert_site(&self.net, v);
            debug_assert_eq!(idx, got, "site set and NVD agree on indices");
        }
        Ok(NetworkWorld {
            net: Arc::clone(&self.net),
            sites: Arc::new(sites),
            nvd: Arc::new(nvd),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_network, random_site_vertices, GridConfig};
    use crate::{SiteIdx, VertexId};

    #[test]
    fn apply_delta_shares_the_road_network() {
        let net = Arc::new(grid_network(&GridConfig::default(), 9).unwrap());
        let sites = SiteSet::new(&net, random_site_vertices(&net, 6, 4).unwrap()).unwrap();
        let snap0 = NetworkWorld::build(Arc::clone(&net), sites);

        // Pick a vertex without a site.
        let free = (0..net.num_vertices() as u32)
            .map(VertexId)
            .find(|&v| snap0.sites.site_at(v).is_none())
            .unwrap();
        let delta = NetSiteDelta {
            added: vec![free],
            removed: vec![SiteIdx(1)],
        };
        let snap1 = snap0.apply_delta(&delta).unwrap();
        assert!(
            Arc::ptr_eq(&snap0.net, &snap1.net),
            "the network is shared across delta epochs"
        );
        assert!(!Arc::ptr_eq(&snap0.nvd, &snap1.nvd));
        assert_eq!(snap1.sites.len(), snap0.sites.len());
        assert_eq!(snap1.len(), snap1.sites.len());
        assert!(!snap1.is_empty());
        // The patched NVD equals a from-scratch build over the new sites.
        let rebuilt = NetworkVoronoi::build(&net, &snap1.sites);
        for s in 0..snap1.sites.len() as u32 {
            assert_eq!(
                snap1.nvd.neighbors(SiteIdx(s)),
                rebuilt.neighbors(SiteIdx(s))
            );
        }
    }

    #[test]
    fn failed_apply_delta_leaves_the_snapshot_usable() {
        let net = Arc::new(grid_network(&GridConfig::default(), 3).unwrap());
        let sites = SiteSet::new(&net, random_site_vertices(&net, 5, 8).unwrap()).unwrap();
        let snap = NetworkWorld::build(Arc::clone(&net), sites);
        let err = snap.apply_delta(&NetSiteDelta::remove(vec![SiteIdx(999)]));
        assert!(matches!(err, Err(RoadNetError::SiteOutOfRange { .. })));
        // The original is untouched and still answers.
        assert_eq!(snap.len(), 5);
    }
}

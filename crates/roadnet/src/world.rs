//! The road-network world snapshot: network + sites + NVD as one value.
//!
//! [`NetworkWorld`] is the road-network equivalent of a
//! `insq_index::VorTree`: everything a query processor needs to answer
//! moving kNN queries, bundled so the layers above (the generic INS
//! processor in `insq-core`, the epoch-versioned `World` in
//! `insq-server`) can treat every space through one index handle.
//!
//! Data-object updates replace `sites`/`nvd`. The network is *no longer*
//! fixed across epochs (the paper's simplifying assumption): a
//! [`NetDelta`] may re-weight edges — traffic congestion and clearing —
//! and the NVD is repaired locally from the changed edges. Epochs whose
//! delta carries no weight changes still share the network `Arc`
//! untouched, so pure data-object churn never copies the graph.

use std::sync::Arc;

use crate::graph::{EdgeId, RoadNetwork};
use crate::nvd::NetworkVoronoi;
use crate::sites::{NetDelta, SiteSet};
use crate::RoadNetError;

/// A road-network snapshot: the network as of this epoch (re-weighted by
/// traffic deltas, topology fixed) plus the per-epoch site set and its
/// precomputed network Voronoi diagram.
#[derive(Debug, Clone)]
pub struct NetworkWorld {
    /// The road network (shared across epochs until a weight delta
    /// replaces it; topology is identical in every epoch).
    pub net: Arc<RoadNetwork>,
    /// The data objects of this epoch.
    pub sites: Arc<SiteSet>,
    /// The network Voronoi diagram of `sites` over `net`.
    pub nvd: Arc<NetworkVoronoi>,
}

impl NetworkWorld {
    /// Builds a snapshot from a network and site set, computing the NVD.
    pub fn build(net: Arc<RoadNetwork>, sites: SiteSet) -> NetworkWorld {
        let nvd = NetworkVoronoi::build(&net, &sites);
        NetworkWorld {
            net,
            sites: Arc::new(sites),
            nvd: Arc::new(nvd),
        }
    }

    /// Bundles already-shared parts (the NVD must have been built over
    /// exactly this network and site set).
    pub fn from_parts(
        net: Arc<RoadNetwork>,
        sites: Arc<SiteSet>,
        nvd: Arc<NetworkVoronoi>,
    ) -> NetworkWorld {
        NetworkWorld { net, sites, nvd }
    }

    /// The next epoch's snapshot: same network, new site set (the server
    /// half of a data-object update).
    pub fn with_sites(&self, sites: SiteSet) -> NetworkWorld {
        NetworkWorld::build(Arc::clone(&self.net), sites)
    }

    /// Number of data-object sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the snapshot holds no sites (never true once built — a
    /// [`SiteSet`] is non-empty by construction).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Checks a delta against this snapshot without changing anything.
    ///
    /// This is the atomicity gate of [`NetworkWorld::apply_delta`] (the
    /// same pre-validate-then-commit discipline as `ClusterPlan::split`):
    /// weight entries must name in-range edges at most once with finite
    /// positive lengths; removals (after dedup) must be in range and
    /// leave at least one site; additions must be in range, pairwise
    /// distinct, and target a vertex that is free or vacated by a
    /// removal in the same delta.
    pub fn validate_delta(&self, delta: &NetDelta) -> Result<(), RoadNetError> {
        self.net.validate_reweight(&delta.weights)?;
        let n = self.sites.len();
        let mut removed = delta.sites.removed.clone();
        removed.sort_unstable();
        removed.dedup();
        for &s in &removed {
            if s.idx() >= n {
                return Err(RoadNetError::SiteOutOfRange { site: s.idx() });
            }
        }
        if removed.len() >= n {
            return Err(RoadNetError::NoSites);
        }
        let base = n - removed.len();
        for (i, &v) in delta.sites.added.iter().enumerate() {
            if v.idx() >= self.net.num_vertices() {
                return Err(RoadNetError::SiteOutOfRange { site: base + i });
            }
            if let Some(prior) = delta.sites.added[..i].iter().position(|&w| w == v) {
                return Err(RoadNetError::DuplicateSite {
                    first: base + prior,
                    second: base + i,
                });
            }
            if let Some(s) = self.sites.site_at(v) {
                if removed.binary_search(&s).is_err() {
                    return Err(RoadNetError::DuplicateSite {
                        first: s.idx(),
                        second: base + i,
                    });
                }
            }
        }
        Ok(())
    }

    /// The next epoch's snapshot produced *incrementally*. The whole
    /// delta is pre-validated atomically ([`NetworkWorld::validate_delta`]):
    /// an invalid delta returns `Err` having built nothing, and the
    /// snapshot — which is never modified either way — stays the live,
    /// fully usable epoch.
    ///
    /// Application order: edge re-weights first (the network is cloned
    /// with patched lengths and the NVD repaired via
    /// [`NetworkVoronoi::reweight_edges`]; a weight-free delta keeps
    /// sharing the network `Arc` untouched), then site removals
    /// (descending pre-delta indices with swap-remove renames), then
    /// site insertions in order — all against the new lengths.
    pub fn apply_delta(&self, delta: &NetDelta) -> Result<NetworkWorld, RoadNetError> {
        self.validate_delta(delta)?;
        let mut nvd = (*self.nvd).clone();
        let net = if delta.weights.is_empty() {
            Arc::clone(&self.net)
        } else {
            let next = Arc::new(self.net.reweighted(&delta.weights)?);
            let changed: Vec<EdgeId> = delta.weights.iter().map(|w| w.edge).collect();
            nvd.reweight_edges(&self.net, &next, &changed);
            next
        };
        let sites = if delta.sites.is_empty() {
            // A pure traffic delta leaves the data objects untouched —
            // share them like a site-only delta shares the network.
            Arc::clone(&self.sites)
        } else {
            let mut sites = (*self.sites).clone();
            let mut removed = delta.sites.removed.clone();
            removed.sort_unstable();
            removed.dedup();
            for &s in removed.iter().rev() {
                let moved = sites.remove(s)?;
                nvd.remove_site(&net, s, moved);
            }
            for &v in &delta.sites.added {
                let idx = sites.insert(&net, v)?;
                let got = nvd.insert_site(&net, v);
                if idx != got {
                    return Err(RoadNetError::SiteIndexDesync {
                        site_set: idx.idx(),
                        nvd: got.idx(),
                    });
                }
            }
            Arc::new(sites)
        };
        Ok(NetworkWorld {
            net,
            sites,
            nvd: Arc::new(nvd),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_network, random_site_vertices, GridConfig};
    use crate::graph::EdgeWeight;
    use crate::sites::NetSiteDelta;
    use crate::{SiteIdx, VertexId};

    #[test]
    fn apply_delta_shares_the_road_network() {
        let net = Arc::new(grid_network(&GridConfig::default(), 9).unwrap());
        let sites = SiteSet::new(&net, random_site_vertices(&net, 6, 4).unwrap()).unwrap();
        let snap0 = NetworkWorld::build(Arc::clone(&net), sites);

        // Pick a vertex without a site.
        let free = (0..net.num_vertices() as u32)
            .map(VertexId)
            .find(|&v| snap0.sites.site_at(v).is_none())
            .unwrap();
        let delta = NetDelta::from(NetSiteDelta {
            added: vec![free],
            removed: vec![SiteIdx(1)],
        });
        let snap1 = snap0.apply_delta(&delta).unwrap();
        assert!(
            Arc::ptr_eq(&snap0.net, &snap1.net),
            "the network is shared across delta epochs"
        );
        assert!(!Arc::ptr_eq(&snap0.nvd, &snap1.nvd));
        assert_eq!(snap1.sites.len(), snap0.sites.len());
        assert_eq!(snap1.len(), snap1.sites.len());
        assert!(!snap1.is_empty());
        // The patched NVD equals a from-scratch build over the new sites.
        let rebuilt = NetworkVoronoi::build(&net, &snap1.sites);
        for s in 0..snap1.sites.len() as u32 {
            assert_eq!(
                snap1.nvd.neighbors(SiteIdx(s)),
                rebuilt.neighbors(SiteIdx(s))
            );
        }
    }

    #[test]
    fn failed_apply_delta_leaves_the_snapshot_usable() {
        let net = Arc::new(grid_network(&GridConfig::default(), 3).unwrap());
        let sites = SiteSet::new(&net, random_site_vertices(&net, 5, 8).unwrap()).unwrap();
        let snap = NetworkWorld::build(Arc::clone(&net), sites);
        let err = snap.apply_delta(&NetDelta::remove(vec![SiteIdx(999)]));
        assert!(matches!(err, Err(RoadNetError::SiteOutOfRange { .. })));
        // The original is untouched and still answers.
        assert_eq!(snap.len(), 5);
    }

    #[test]
    fn weight_delta_replaces_the_network_and_repairs_the_nvd() {
        let net = Arc::new(grid_network(&GridConfig::default(), 21).unwrap());
        let sites = SiteSet::new(&net, random_site_vertices(&net, 8, 13).unwrap()).unwrap();
        let snap0 = NetworkWorld::build(Arc::clone(&net), sites);

        let storm: Vec<EdgeWeight> = (0..6)
            .map(|e| EdgeWeight::scaled(&net, crate::EdgeId(e), 2.5))
            .collect();
        let snap1 = snap0.apply_delta(&NetDelta::reweight(storm)).unwrap();
        assert!(
            !Arc::ptr_eq(&snap0.net, &snap1.net),
            "a weight delta produces a new network epoch"
        );
        assert_eq!(snap0.net.edge(crate::EdgeId(0)).len * 2.5, {
            snap1.net.edge(crate::EdgeId(0)).len
        });
        // Sites are untouched, and the repaired NVD matches a fresh build
        // over the congested network bit-for-bit (jittered grid: no ties).
        assert!(Arc::ptr_eq(&snap0.sites, &snap1.sites));
        let fresh = NetworkVoronoi::build(&snap1.net, &snap1.sites);
        for v in 0..snap1.net.num_vertices() as u32 {
            let v = VertexId(v);
            assert_eq!(snap1.nvd.dist(v).to_bits(), fresh.dist(v).to_bits());
            assert_eq!(snap1.nvd.owner(v), fresh.owner(v));
        }
    }
}

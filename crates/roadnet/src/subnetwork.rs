//! Localized search on cell-restricted subnetworks (Theorem 2).
//!
//! Theorem 2 of the paper: if the kNN set of `q` computed on the subnetwork
//! formed by the Voronoi cells of `Oknn ∪ I(Oknn)` equals `Oknn`, then
//! `Oknn` is the true kNN set on the whole network. The INS processor
//! therefore validates by running a *restricted* INE that never leaves the
//! union of those cells — the expansion cost is bounded by the size of
//! `k + |INS|` cells instead of the whole network.
//!
//! Rather than materialising a subgraph, [`restricted_knn`] runs Dijkstra
//! on the original adjacency but only relaxes along edge fragments owned by
//! the allowed sites (border points act as walls). This is equivalent to
//! searching `D_{Oknn ∪ I(Oknn)}`; with a caller-held
//! [`DijkstraScratch`] ([`restricted_knn_into`]) it allocates nothing
//! per query at all.

use std::cmp::Reverse;

use insq_geom::DistEntry;

use crate::graph::RoadNetwork;
use crate::nvd::{EdgeOwnership, NetworkVoronoi};
use crate::position::NetPosition;
use crate::scratch::DijkstraScratch;
use crate::sites::{SiteIdx, SiteSet};

/// A reusable mask of allowed sites, sized to the site set.
#[derive(Debug, Clone, Default)]
pub struct SiteMask {
    allowed: Vec<bool>,
    members: Vec<SiteIdx>,
}

impl SiteMask {
    /// Creates an empty mask for `num_sites` sites.
    pub fn new(num_sites: usize) -> SiteMask {
        SiteMask {
            allowed: vec![false; num_sites],
            members: Vec::new(),
        }
    }

    /// The number of sites the mask is dimensioned for.
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.allowed.len()
    }

    /// Re-dimensions the mask to `num_sites` — the reuse path for
    /// callers that keep one scratch mask across queries. When the site
    /// count actually changed the mask is reallocated and cleared; when
    /// it is unchanged this is a no-op and the previous contents stay —
    /// follow with [`SiteMask::set`] (which clears and refills) before
    /// reading.
    pub fn resize(&mut self, num_sites: usize) {
        if self.allowed.len() != num_sites {
            self.allowed.clear();
            self.allowed.resize(num_sites, false);
            self.members.clear();
        }
    }

    /// Clears and refills the mask.
    pub fn set<I: IntoIterator<Item = SiteIdx>>(&mut self, sites: I) {
        for &s in &self.members {
            self.allowed[s.idx()] = false;
        }
        self.members.clear();
        for s in sites {
            if !self.allowed[s.idx()] {
                self.allowed[s.idx()] = true;
                self.members.push(s);
            }
        }
    }

    /// Whether `s` is in the mask.
    #[inline]
    pub fn contains(&self, s: SiteIdx) -> bool {
        self.allowed[s.idx()]
    }

    /// The member sites (insertion order).
    #[inline]
    pub fn members(&self) -> &[SiteIdx] {
        &self.members
    }
}

/// Statistics of a restricted expansion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestrictedStats {
    /// Vertices settled.
    pub settled: usize,
    /// Heap pushes.
    pub pushes: usize,
}

/// kNN of `pos` on the subnetwork formed by the Voronoi cells of the masked
/// sites, ascending by distance (ties by site index).
///
/// Precondition for Theorem 2 semantics: `pos` lies inside the union of the
/// masked cells (true by construction when the mask is `kNN ∪ INS` and `q`
/// was inside the order-k cell at the last recompute). When `pos` is
/// outside, the function still terminates and returns the kNN within
/// whatever masked region is reachable.
pub fn restricted_knn(
    net: &RoadNetwork,
    sites: &SiteSet,
    nvd: &NetworkVoronoi,
    mask: &SiteMask,
    pos: NetPosition,
    k: usize,
) -> (Vec<(SiteIdx, f64)>, RestrictedStats) {
    let mut scratch = DijkstraScratch::new();
    let mut result = Vec::with_capacity(k);
    let stats = restricted_knn_into(net, sites, nvd, mask, &mut scratch, pos, k, &mut result);
    (result, stats)
}

/// Allocation-free [`restricted_knn`]: the expansion runs inside
/// `scratch` and the result lands in `out` (cleared first). This is the
/// per-tick **validation** path of the road-network processors — in
/// steady state it touches no allocator.
#[allow(clippy::too_many_arguments)]
pub fn restricted_knn_into(
    net: &RoadNetwork,
    sites: &SiteSet,
    nvd: &NetworkVoronoi,
    mask: &SiteMask,
    scratch: &mut DijkstraScratch,
    pos: NetPosition,
    k: usize,
    out: &mut Vec<(SiteIdx, f64)>,
) -> RestrictedStats {
    let mut stats = RestrictedStats::default();
    out.clear();
    if k == 0 {
        return stats;
    }

    scratch.begin(net.num_vertices());

    // Seed: from a vertex, or from an edge position — but only across edge
    // fragments owned by masked sites.
    match pos {
        NetPosition::Vertex(v) => {
            if mask.contains(nvd.owner(v)) {
                scratch.dist.set(v.idx(), 0.0);
                scratch.heap.push(Reverse(DistEntry { dist: 0.0, id: v }));
                stats.pushes += 1;
            }
        }
        NetPosition::OnEdge { edge, offset } => {
            let rec = net.edge(edge);
            // Reachability of the two endpoints from within the edge
            // depends on the edge's ownership.
            let (reach_u, reach_v) = match nvd.edge_ownership(edge) {
                EdgeOwnership::Whole(o) => {
                    let ok = mask.contains(o);
                    (ok, ok)
                }
                EdgeOwnership::Split {
                    owner_u,
                    owner_v,
                    border,
                } => {
                    let on_u_side = offset <= border;
                    let ou = mask.contains(owner_u);
                    let ov = mask.contains(owner_v);
                    // Walking within the edge crosses the border point; that
                    // is allowed iff both fragments are masked.
                    if on_u_side {
                        (ou, ou && ov)
                    } else {
                        (ov && ou, ov)
                    }
                }
            };
            if reach_u {
                let d = offset;
                if d < scratch.dist.get(rec.u.idx()) {
                    scratch.dist.set(rec.u.idx(), d);
                    scratch.heap.push(Reverse(DistEntry { dist: d, id: rec.u }));
                    stats.pushes += 1;
                }
            }
            if reach_v {
                let d = rec.len - offset;
                if d < scratch.dist.get(rec.v.idx()) {
                    scratch.dist.set(rec.v.idx(), d);
                    scratch.heap.push(Reverse(DistEntry { dist: d, id: rec.v }));
                    stats.pushes += 1;
                }
            }
        }
    }

    while let Some(Reverse(DistEntry { dist: d, id: u })) = scratch.heap.pop() {
        if d > scratch.dist.get(u.idx()) {
            continue;
        }
        stats.settled += 1;
        if let Some(s) = sites.site_at(u) {
            if mask.contains(s) {
                out.push((s, d));
                if out.len() == k {
                    break;
                }
            }
        }
        for &(w, e) in net.neighbors(u) {
            // Traverse only edges entirely inside the masked region.
            let passable = match nvd.edge_ownership(e) {
                EdgeOwnership::Whole(o) => mask.contains(o),
                EdgeOwnership::Split {
                    owner_u, owner_v, ..
                } => mask.contains(owner_u) && mask.contains(owner_v),
            };
            if !passable {
                continue;
            }
            let nd = d + net.edge(e).len;
            if nd < scratch.dist.get(w.idx()) {
                scratch.dist.set(w.idx(), nd);
                scratch.heap.push(Reverse(DistEntry { dist: nd, id: w }));
                stats.pushes += 1;
            }
        }
    }
    // Total-order comparator: the unstable (allocation-free) sort is
    // deterministic.
    out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeRec, VertexId};
    use crate::ine::network_knn;
    use crate::nvd::NetworkVoronoi;
    use insq_geom::Point;

    fn edge(u: u32, v: u32, len: f64) -> EdgeRec {
        EdgeRec {
            u: VertexId(u),
            v: VertexId(v),
            len,
        }
    }

    /// 6x6 grid, sites on a diagonal-ish scatter.
    fn grid() -> (RoadNetwork, SiteSet) {
        let w = 6u32;
        let mut coords = Vec::new();
        let mut edges = Vec::new();
        for r in 0..w {
            for c in 0..w {
                coords.push(Point::new(c as f64, r as f64));
            }
        }
        for r in 0..w {
            for c in 0..w {
                let id = r * w + c;
                if c + 1 < w {
                    edges.push(edge(id, id + 1, 1.0));
                }
                if r + 1 < w {
                    edges.push(edge(id, id + w, 1.0));
                }
            }
        }
        let net = RoadNetwork::new(coords, edges).unwrap();
        let sv = vec![0u32, 3, 5, 14, 16, 21, 27, 30, 33, 35]
            .into_iter()
            .map(VertexId)
            .collect();
        let sites = SiteSet::new(&net, sv).unwrap();
        (net, sites)
    }

    /// Theorem-2 style check: with the mask set to kNN ∪ network Voronoi
    /// neighbors of the kNN, the restricted kNN equals the global kNN.
    #[test]
    fn restricted_matches_global_with_ins_mask() {
        let (net, sites) = grid();
        let nvd = NetworkVoronoi::build(&net, &sites);
        let k = 3;
        for v in 0..net.num_vertices() as u32 {
            let pos = NetPosition::Vertex(VertexId(v));
            let global = network_knn(&net, &sites, pos, k);
            // Build kNN ∪ INS mask.
            let mut mask = SiteMask::new(sites.len());
            let knn: Vec<SiteIdx> = global.iter().map(|&(s, _)| s).collect();
            let mut members = knn.clone();
            for &s in &knn {
                members.extend_from_slice(nvd.neighbors(s));
            }
            mask.set(members);
            let (restricted, _) = restricted_knn(&net, &sites, &nvd, &mask, pos, k);
            let g: Vec<SiteIdx> = global.iter().map(|&(s, _)| s).collect();
            let r: Vec<SiteIdx> = restricted.iter().map(|&(s, _)| s).collect();
            // Compare as sets of distances (ties may order differently).
            let gd: Vec<f64> = global.iter().map(|&(_, d)| d).collect();
            let rd: Vec<f64> = restricted.iter().map(|&(_, d)| d).collect();
            assert_eq!(gd, rd, "vertex {v}: {g:?} vs {r:?}");
        }
    }

    #[test]
    fn mask_walls_block_expansion() {
        let (net, sites) = grid();
        let nvd = NetworkVoronoi::build(&net, &sites);
        // Only the cell of the site at vertex 0 is allowed: from vertex 0 we
        // must find exactly that one site, however large k is.
        let s0 = sites.site_at(VertexId(0)).unwrap();
        let mut mask = SiteMask::new(sites.len());
        mask.set([s0]);
        let (res, stats) = restricted_knn(
            &net,
            &sites,
            &nvd,
            &mask,
            NetPosition::Vertex(VertexId(0)),
            5,
        );
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0, s0);
        assert_eq!(res[0].1, 0.0);
        // The expansion must stay inside one cell: far fewer settles than
        // the whole 36-vertex network.
        assert!(stats.settled < 36, "settled {}", stats.settled);
    }

    #[test]
    fn position_outside_mask_reaches_nothing() {
        let (net, sites) = grid();
        let nvd = NetworkVoronoi::build(&net, &sites);
        // Mask only the site at vertex 35; query from vertex 0 (deep inside
        // another cell) cannot expand anywhere.
        let far = sites.site_at(VertexId(35)).unwrap();
        let mut mask = SiteMask::new(sites.len());
        mask.set([far]);
        let (res, _) = restricted_knn(
            &net,
            &sites,
            &nvd,
            &mask,
            NetPosition::Vertex(VertexId(0)),
            3,
        );
        assert!(res.is_empty());
    }

    #[test]
    fn reused_scratch_matches_fresh() {
        let (net, sites) = grid();
        let nvd = NetworkVoronoi::build(&net, &sites);
        let k = 3;
        let mut mask = SiteMask::new(sites.len());
        let mut scratch = DijkstraScratch::new();
        let mut out = Vec::new();
        for v in 0..net.num_vertices() as u32 {
            let pos = NetPosition::Vertex(VertexId(v));
            let knn: Vec<SiteIdx> = network_knn(&net, &sites, pos, k)
                .into_iter()
                .map(|(s, _)| s)
                .collect();
            let mut members = knn.clone();
            for &s in &knn {
                members.extend_from_slice(nvd.neighbors(s));
            }
            mask.set(members);
            let stats =
                restricted_knn_into(&net, &sites, &nvd, &mask, &mut scratch, pos, k, &mut out);
            let (want, want_stats) = restricted_knn(&net, &sites, &nvd, &mask, pos, k);
            assert_eq!(out, want, "vertex {v}");
            assert_eq!(stats, want_stats, "vertex {v}");
        }
    }

    #[test]
    fn mask_reuse_clears_previous_members() {
        let mut mask = SiteMask::new(4);
        mask.set([SiteIdx(0), SiteIdx(2)]);
        assert!(mask.contains(SiteIdx(0)));
        assert!(!mask.contains(SiteIdx(1)));
        mask.set([SiteIdx(1)]);
        assert!(!mask.contains(SiteIdx(0)));
        assert!(!mask.contains(SiteIdx(2)));
        assert!(mask.contains(SiteIdx(1)));
        assert_eq!(mask.members(), &[SiteIdx(1)]);
        // Duplicates collapse.
        mask.set([SiteIdx(3), SiteIdx(3)]);
        assert_eq!(mask.members(), &[SiteIdx(3)]);
    }

    #[test]
    fn edge_position_on_split_edge() {
        let (net, sites) = grid();
        let nvd = NetworkVoronoi::build(&net, &sites);
        // Find a split edge and query from just inside one side.
        let split = (0..net.num_edges() as u32)
            .map(crate::graph::EdgeId)
            .find(|&e| matches!(nvd.edge_ownership(e), EdgeOwnership::Split { .. }))
            .expect("grid with scattered sites has split edges");
        let EdgeOwnership::Split {
            owner_u, border, ..
        } = nvd.edge_ownership(split)
        else {
            unreachable!()
        };
        let pos = NetPosition::OnEdge {
            edge: split,
            offset: (border * 0.5).max(1e-6),
        };
        // Mask = only owner_u: the query (on owner_u's side) must reach it.
        let mut mask = SiteMask::new(sites.len());
        mask.set([owner_u]);
        let (res, _) = restricted_knn(&net, &sites, &nvd, &mask, pos, 1);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0, owner_u);
    }
}

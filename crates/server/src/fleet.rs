//! The multi-query fleet engine.
//!
//! [`FleetEngine`] owns a sharded registry of live [`FleetQuery`]s over
//! one shared, epoch-versioned [`World`] and advances all of them per
//! timestamp in parallel batches on a scoped-thread worker pool.
//!
//! **Determinism.** Queries are independent (they share only the
//! immutable world snapshot), every query belongs to exactly one shard,
//! shards process their queries in registration order, and per-shard
//! statistics are merged in shard order — so `tick_all` results and all
//! aggregate counters are bit-identical to sequential execution at every
//! thread count. The equivalence test in `tests/fleet_equivalence.rs`
//! asserts exactly this, across an epoch swap.

use std::sync::Arc;
use std::time::{Duration, Instant};

use insq_core::{QueryStats, TickOutcome};

use crate::queries::FleetQuery;
use crate::world::{Epoch, World};

/// Identifier of a registered query. Ids are assigned sequentially from
/// 0 in registration order and are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl QueryId {
    /// The id as a dense index (valid while no query was deregistered).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Worker-pool and sharding configuration of a [`FleetEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of registry shards (≥ 1). Queries are assigned round-robin
    /// by id, so shards stay evenly sized; `tick_all` statically splits
    /// the shard list into one contiguous block per worker (deterministic
    /// by construction — there is no dynamic stealing). The default suits
    /// fleets of thousands.
    pub shards: usize,
    /// Worker threads for `tick_all` (≥ 1). `1` means strictly
    /// sequential execution on the calling thread.
    pub threads: usize,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 64,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(2),
        }
    }
}

impl FleetConfig {
    /// A configuration with the given thread count and default sharding.
    pub fn with_threads(threads: usize) -> FleetConfig {
        FleetConfig {
            threads,
            ..FleetConfig::default()
        }
    }
}

#[derive(Debug)]
struct Entry<Q> {
    id: QueryId,
    query: Q,
}

/// What one [`FleetEngine::tick_all`] did, aggregated over the fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickSummary {
    /// The world epoch this tick ran against.
    pub epoch: Epoch,
    /// Queries advanced.
    pub ticked: u64,
    /// Queries that detected an epoch bump and rebound to the new
    /// snapshot before ticking.
    pub rebinds: u64,
    /// Ticks that validated without any result change.
    pub valid: u64,
    /// Single-swap local repairs (update case (i)).
    pub swaps: u64,
    /// Multi-object local repairs (update case (ii)).
    pub local_reranks: u64,
    /// Full recomputations (update case (iii) / initial / post-rebind).
    pub recomputations: u64,
}

impl TickSummary {
    fn absorb(&mut self, other: &TickSummary) {
        self.ticked += other.ticked;
        self.rebinds += other.rebinds;
        self.valid += other.valid;
        self.swaps += other.swaps;
        self.local_reranks += other.local_reranks;
        self.recomputations += other.recomputations;
    }

    fn record(&mut self, outcome: TickOutcome) {
        self.ticked += 1;
        match outcome {
            TickOutcome::Valid => self.valid += 1,
            TickOutcome::Swap => self.swaps += 1,
            TickOutcome::LocalRerank => self.local_reranks += 1,
            TickOutcome::Recompute => self.recomputations += 1,
        }
    }
}

/// Per-shard receiver of per-query tick outcomes. `()` records nothing
/// (and compiles away entirely — [`FleetEngine::tick_all`] keeps its
/// exact pre-existing hot path); a `Vec` collects them for callers that
/// must relay results per query ([`FleetEngine::tick_all_outcomes`],
/// used by the `insq-net` serving layer).
trait OutcomeSink: Default + Send {
    fn push(&mut self, id: QueryId, outcome: TickOutcome);
}

impl OutcomeSink for () {
    #[inline]
    fn push(&mut self, _id: QueryId, _outcome: TickOutcome) {}
}

impl OutcomeSink for Vec<(QueryId, TickOutcome)> {
    #[inline]
    fn push(&mut self, id: QueryId, outcome: TickOutcome) {
        self.push((id, outcome));
    }
}

/// Aggregated fleet statistics (see [`FleetEngine::stats`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetStats {
    /// Cumulative statistics merged per shard, in shard order.
    pub per_shard: Vec<QueryStats>,
    /// The fleet-wide totals (merge of `per_shard`).
    pub total: QueryStats,
    /// Live queries.
    pub queries: usize,
    /// Wall-clock time spent inside `tick_all` since engine creation.
    pub elapsed: Duration,
}

impl FleetStats {
    /// Fleet throughput: query-ticks processed per wall-clock second.
    pub fn ticks_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.total.ticks as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean validation operations per query-tick.
    pub fn validations_per_tick(&self) -> f64 {
        self.total.validation_ops_per_tick()
    }

    /// Fraction of query-ticks that needed a full recomputation.
    pub fn recompute_rate(&self) -> f64 {
        self.total.recompute_rate()
    }
}

/// A concurrent multi-query engine over one epoch-versioned [`World`].
///
/// `W` is the world snapshot payload, `Q` the fleet client type (see
/// [`crate::InsFleetQuery`] / [`crate::NetFleetQuery`]).
#[derive(Debug)]
pub struct FleetEngine<W, Q> {
    world: Arc<World<W>>,
    shards: Vec<Vec<Entry<Q>>>,
    threads: usize,
    next_id: u64,
    len: usize,
    elapsed: Duration,
}

impl<W, Q> FleetEngine<W, Q>
where
    W: Send + Sync,
    Q: FleetQuery<W>,
{
    /// Creates an engine over `world` (shard/thread counts are clamped to
    /// at least 1).
    pub fn new(world: Arc<World<W>>, cfg: FleetConfig) -> FleetEngine<W, Q> {
        let shards = cfg.shards.max(1);
        FleetEngine {
            world,
            shards: (0..shards).map(|_| Vec::new()).collect(),
            threads: cfg.threads.max(1),
            next_id: 0,
            len: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// The shared world.
    pub fn world(&self) -> &Arc<World<W>> {
        &self.world
    }

    /// Number of live queries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Worker threads used by [`FleetEngine::tick_all`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Registers a query; returns its id. Ids are sequential from 0, so
    /// while no query is deregistered, `QueryId::index` doubles as a
    /// dense index into caller-side position tables.
    ///
    /// The query is bound to *this* engine's world snapshot on insert —
    /// epochs are world-relative, so a query created against a different
    /// `World` could otherwise carry a matching epoch number and keep
    /// answering from the wrong data set undetected. A freshly created
    /// (never ticked) query pays nothing for this; a warm query pays one
    /// recomputation at its next tick.
    pub fn register(&mut self, mut query: Q) -> QueryId {
        let (epoch, snapshot) = self.world.snapshot();
        query.bind(epoch, &snapshot);
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let shard = id.index() % self.shards.len();
        self.shards[shard].push(Entry { id, query });
        self.len += 1;
        id
    }

    /// Removes a query, returning it (with its cumulative statistics).
    pub fn deregister(&mut self, id: QueryId) -> Option<Q> {
        let shard_at = id.index() % self.shards.len();
        let shard = &mut self.shards[shard_at];
        let at = shard.iter().position(|e| e.id == id)?;
        self.len -= 1;
        Some(shard.remove(at).query)
    }

    /// Read access to a live query.
    pub fn query(&self, id: QueryId) -> Option<&Q> {
        self.shards[id.index() % self.shards.len()]
            .iter()
            .find(|e| e.id == id)
            .map(|e| &e.query)
    }

    /// Visits every live query in shard order (registration order within
    /// a shard) — the same deterministic order
    /// [`FleetEngine::tick_all_outcomes`] reports in, so results of a
    /// tick can be paired with their queries in one O(n) pass instead of
    /// n per-id [`FleetEngine::query`] scans.
    pub fn for_each_query(&self, mut f: impl FnMut(QueryId, &Q)) {
        for shard in &self.shards {
            for e in shard {
                f(e.id, &e.query);
            }
        }
    }

    /// All live query ids, ascending.
    pub fn ids(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> = self
            .shards
            .iter()
            .flat_map(|s| s.iter().map(|e| e.id))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Advances every query to its position for this timestamp.
    ///
    /// `positions` maps a query id to its new position; it is called from
    /// worker threads and must be pure (same id → same position within
    /// one call). Queries bound to an older epoch than the world's
    /// current one are rebound first (paying a recomputation on this
    /// tick), so a [`World::publish`] between ticks reaches the whole
    /// fleet exactly once.
    pub fn tick_all<F>(&mut self, positions: F) -> TickSummary
    where
        F: Fn(QueryId) -> Q::Pos + Sync,
    {
        self.tick_sharded::<F, ()>(positions).0
    }

    /// [`FleetEngine::tick_all`] that additionally reports every query's
    /// individual [`TickOutcome`], appended to `out` in shard order
    /// (registration order within a shard) — deterministic at any thread
    /// count, like everything else here. `out` is cleared first. The
    /// serving layer uses this to relay per-session results.
    pub fn tick_all_outcomes<F>(
        &mut self,
        positions: F,
        out: &mut Vec<(QueryId, TickOutcome)>,
    ) -> TickSummary
    where
        F: Fn(QueryId) -> Q::Pos + Sync,
    {
        out.clear();
        let (summary, per_shard) = self.tick_sharded::<F, Vec<(QueryId, TickOutcome)>>(positions);
        for shard in per_shard {
            out.extend(shard);
        }
        summary
    }

    /// The one tick loop behind both `tick_all` flavors: `R` is the
    /// per-shard outcome sink (`()` = record nothing).
    fn tick_sharded<F, R>(&mut self, positions: F) -> (TickSummary, Vec<R>)
    where
        F: Fn(QueryId) -> Q::Pos + Sync,
        R: OutcomeSink,
    {
        let t0 = Instant::now();
        let (epoch, snapshot) = self.world.snapshot();
        let n_shards = self.shards.len();
        let threads = self.threads.min(n_shards).max(1);
        let mut per_shard = vec![TickSummary::default(); n_shards];
        let mut recorded: Vec<R> = (0..n_shards).map(|_| R::default()).collect();

        let tick_shard = |shard: &mut Vec<Entry<Q>>, out: &mut TickSummary, rec: &mut R| {
            out.epoch = epoch;
            for entry in shard.iter_mut() {
                if entry.query.bound_epoch() != epoch {
                    entry.query.bind(epoch, &snapshot);
                    out.rebinds += 1;
                }
                let outcome = entry.query.tick(positions(entry.id));
                out.record(outcome);
                rec.push(entry.id, outcome);
            }
        };

        if threads == 1 {
            for ((shard, out), rec) in self
                .shards
                .iter_mut()
                .zip(per_shard.iter_mut())
                .zip(recorded.iter_mut())
            {
                tick_shard(shard, out, rec);
            }
        } else {
            let chunk = n_shards.div_ceil(threads);
            let tick_shard = &tick_shard;
            std::thread::scope(|scope| {
                for ((shards, outs), recs) in self
                    .shards
                    .chunks_mut(chunk)
                    .zip(per_shard.chunks_mut(chunk))
                    .zip(recorded.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for ((shard, out), rec) in
                            shards.iter_mut().zip(outs.iter_mut()).zip(recs.iter_mut())
                        {
                            tick_shard(shard, out, rec);
                        }
                    });
                }
            });
        }

        // Merge in shard order: identical totals at any thread count.
        let mut summary = TickSummary {
            epoch,
            ..TickSummary::default()
        };
        for s in &per_shard {
            summary.absorb(s);
        }
        self.elapsed += t0.elapsed();
        (summary, recorded)
    }

    /// Aggregated fleet statistics: per-shard [`QueryStats`] merges (in
    /// shard order) plus the fleet-wide total — deterministic at any
    /// thread count.
    pub fn stats(&self) -> FleetStats {
        let per_shard: Vec<QueryStats> = self
            .shards
            .iter()
            .map(|shard| {
                let mut merged = QueryStats::default();
                for e in shard {
                    merged.merge(e.query.stats());
                }
                merged
            })
            .collect();
        let mut total = QueryStats::default();
        for s in &per_shard {
            total.merge(s);
        }
        FleetStats {
            per_shard,
            total,
            queries: self.len,
            elapsed: self.elapsed,
        }
    }

    /// Clears every query's statistics (keeps query state).
    pub fn reset_stats(&mut self) {
        for shard in &mut self.shards {
            for e in shard {
                e.query.reset_stats();
            }
        }
        self.elapsed = Duration::ZERO;
    }
}

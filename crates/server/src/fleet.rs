//! The multi-query fleet engine.
//!
//! [`FleetEngine`] owns a sharded registry of live [`FleetQuery`]s over
//! one shared, epoch-versioned [`World`] and advances all of them per
//! timestamp in parallel batches on a scoped-thread worker pool.
//!
//! **The tick contract.** [`FleetEngine::tick`] is the one entry point:
//! it takes an explicit [`TickPolicy`], a position feed returning a
//! [`TickPos`] per query, and a [`TickSink`] receiving one
//! [`TickDisposition`] per live query in deterministic shard order.
//! [`TickPolicy::Barrier`] is the classic all-present semantics (every
//! query must have a fresh position — the spec the determinism suites
//! pin); [`TickPolicy::Deadline`] ticks whatever positions have arrived,
//! re-serves the rest, and force-refreshes any query held stale past
//! `max_staleness` ticks so epoch swaps still propagate.
//! [`FleetEngine::tick_all`] / [`FleetEngine::tick_all_outcomes`] are
//! thin Barrier wrappers kept for every existing call site.
//!
//! **Determinism.** Queries are independent (they share only the
//! immutable world snapshot), every query belongs to exactly one shard,
//! shards process their queries in registration order, per-query
//! staleness counters advance in that same order, and per-shard
//! statistics are merged in shard order — so `tick` results and all
//! aggregate counters are bit-identical to sequential execution at every
//! thread count, under either policy. The equivalence tests in
//! `tests/fleet_equivalence.rs` and `tests/tick_policy.rs` assert
//! exactly this, across an epoch swap.

use std::sync::Arc;
use std::time::{Duration, Instant};

use insq_core::{QueryStats, TickOutcome};

use crate::queries::FleetQuery;
use crate::world::{Epoch, World};

/// Identifier of a registered query. Ids are assigned sequentially from
/// 0 in registration order and are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl QueryId {
    /// The id as a dense index (valid while no query was deregistered).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Worker-pool and sharding configuration of a [`FleetEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of registry shards (≥ 1). Queries are assigned round-robin
    /// by id, so shards stay evenly sized; `tick_all` statically splits
    /// the shard list into one contiguous block per worker (deterministic
    /// by construction — there is no dynamic stealing). The default suits
    /// fleets of thousands.
    pub shards: usize,
    /// Worker threads for `tick_all` (≥ 1). `1` means strictly
    /// sequential execution on the calling thread. This is a *cap*: the
    /// effective worker count of a tick is additionally clamped to the
    /// shard count and to the hardware parallelism available at engine
    /// construction — oversubscribing a host buys nothing but scheduler
    /// overhead, and the tick results are bit-identical at every worker
    /// count anyway.
    pub threads: usize,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 64,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(2),
        }
    }
}

impl FleetConfig {
    /// A configuration with the given thread count and default sharding.
    pub fn with_threads(threads: usize) -> FleetConfig {
        FleetConfig {
            threads,
            ..FleetConfig::default()
        }
    }
}

/// How a [`FleetEngine::tick`] decides which queries to advance.
///
/// The policy is explicit so serving layers can name the trade-off they
/// make: `Barrier` is the deterministic lockstep spec, `Deadline` is the
/// event-driven mode where one slow position producer no longer stalls
/// the rest of the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickPolicy {
    /// Every live query must have a fresh position
    /// ([`TickPos::Fresh`]); the whole fleet advances together. This is
    /// the classic `tick_all` semantics and the spec the determinism
    /// suites pin — feeding [`TickPos::Held`] or [`TickPos::Missing`]
    /// under this policy is a caller bug and panics.
    Barrier,
    /// Advance whatever queries have fresh positions; queries without
    /// one are **re-served** (not ticked, their result stands and the
    /// sink records [`TickDisposition::Stale`]) — except that a query
    /// re-served for more than `max_staleness` consecutive ticks is
    /// **force-ticked at its last known position**
    /// ([`TickPos::Held`]), so index epoch swaps still reach every
    /// query within a bounded number of ticks.
    Deadline {
        /// Consecutive ticks a query may be re-served before the engine
        /// force-ticks it at its held position. `0` means a held query
        /// is always re-ticked (never re-served).
        max_staleness: u64,
    },
}

/// One query's position for one [`FleetEngine::tick`], as returned by
/// the position feed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TickPos<P> {
    /// A fresh position arrived since the last tick.
    Fresh(P),
    /// No fresh position; `P` is the last known one. Under
    /// [`TickPolicy::Deadline`] the query is re-served until its
    /// staleness exceeds `max_staleness`, then force-ticked at `P`.
    Held(P),
    /// No position has ever been seen for this query; it is always
    /// re-served under [`TickPolicy::Deadline`].
    Missing,
}

/// What one [`FleetEngine::tick`] did with one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickDisposition {
    /// Ticked on a fresh position.
    Fresh(TickOutcome),
    /// No fresh position, but staleness exceeded the deadline policy's
    /// bound: force-ticked at the last known position.
    Refreshed(TickOutcome),
    /// Not ticked; the previous result stands (the serving layer
    /// re-serves its cached last result).
    Stale,
}

impl TickDisposition {
    /// The tick outcome, if the query was actually advanced.
    pub fn outcome(self) -> Option<TickOutcome> {
        match self {
            TickDisposition::Fresh(o) | TickDisposition::Refreshed(o) => Some(o),
            TickDisposition::Stale => None,
        }
    }
}

/// Receives one [`TickDisposition`] per live query from
/// [`FleetEngine::tick`], in deterministic shard order (registration
/// order within a shard) — the same order
/// [`FleetEngine::for_each_query`] visits in, so results pair with
/// queries in one O(n) pass.
///
/// `()` records nothing and keeps the exact zero-recording hot path
/// ([`FleetEngine::tick_all`] uses it); `Vec<(QueryId, TickOutcome)>`
/// collects outcomes of ticked queries only (the
/// [`FleetEngine::tick_all_outcomes`] wrapper); `Vec<(QueryId,
/// TickDisposition)>` collects everything (the serving layer's sink).
pub trait TickSink {
    /// Whether the engine must materialise per-query dispositions at
    /// all. `false` (the `()` sink) compiles recording away entirely.
    const RECORDS: bool = true;

    /// Called once per live query, in shard order.
    fn record(&mut self, id: QueryId, disposition: TickDisposition);
}

impl TickSink for () {
    const RECORDS: bool = false;

    #[inline]
    fn record(&mut self, _id: QueryId, _disposition: TickDisposition) {}
}

impl TickSink for Vec<(QueryId, TickDisposition)> {
    #[inline]
    fn record(&mut self, id: QueryId, disposition: TickDisposition) {
        self.push((id, disposition));
    }
}

impl TickSink for Vec<(QueryId, TickOutcome)> {
    #[inline]
    fn record(&mut self, id: QueryId, disposition: TickDisposition) {
        if let Some(outcome) = disposition.outcome() {
            self.push((id, outcome));
        }
    }
}

#[derive(Debug)]
struct Entry<Q> {
    id: QueryId,
    query: Q,
    /// Consecutive ticks this query has been re-served (deadline policy
    /// only; reset whenever the query actually ticks).
    stale: u64,
}

/// What one [`FleetEngine::tick_all`] did, aggregated over the fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickSummary {
    /// The world epoch this tick ran against.
    pub epoch: Epoch,
    /// Queries advanced.
    pub ticked: u64,
    /// Queries that detected an epoch bump and rebound to the new
    /// snapshot before ticking.
    pub rebinds: u64,
    /// Ticks that validated without any result change.
    pub valid: u64,
    /// Single-swap local repairs (update case (i)).
    pub swaps: u64,
    /// Multi-object local repairs (update case (ii)).
    pub local_reranks: u64,
    /// Full recomputations (update case (iii) / initial / post-rebind).
    pub recomputations: u64,
    /// Queries re-served without ticking (deadline policy only).
    pub stale: u64,
    /// Queries force-ticked at their held position because staleness
    /// exceeded the deadline policy's bound (subset of `ticked`).
    pub refreshed: u64,
}

impl TickSummary {
    fn absorb(&mut self, other: &TickSummary) {
        self.ticked += other.ticked;
        self.rebinds += other.rebinds;
        self.valid += other.valid;
        self.swaps += other.swaps;
        self.local_reranks += other.local_reranks;
        self.recomputations += other.recomputations;
        self.stale += other.stale;
        self.refreshed += other.refreshed;
    }

    fn record(&mut self, outcome: TickOutcome) {
        self.ticked += 1;
        match outcome {
            TickOutcome::Valid => self.valid += 1,
            TickOutcome::Swap => self.swaps += 1,
            TickOutcome::LocalRerank => self.local_reranks += 1,
            TickOutcome::Recompute => self.recomputations += 1,
        }
    }
}

/// Aggregated fleet statistics (see [`FleetEngine::stats`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetStats {
    /// Cumulative statistics merged per shard, in shard order.
    pub per_shard: Vec<QueryStats>,
    /// The fleet-wide totals (merge of `per_shard`).
    pub total: QueryStats,
    /// Live queries.
    pub queries: usize,
    /// Wall-clock time spent inside `tick_all` since engine creation.
    pub elapsed: Duration,
}

impl FleetStats {
    /// Fleet throughput: query-ticks processed per wall-clock second.
    pub fn ticks_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.total.ticks as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean validation operations per query-tick.
    pub fn validations_per_tick(&self) -> f64 {
        self.total.validation_ops_per_tick()
    }

    /// Fraction of query-ticks that needed a full recomputation.
    pub fn recompute_rate(&self) -> f64 {
        self.total.recompute_rate()
    }
}

/// A concurrent multi-query engine over one epoch-versioned [`World`].
///
/// `W` is the world snapshot payload, `Q` the fleet client type (see
/// [`crate::InsFleetQuery`] / [`crate::NetFleetQuery`]).
#[derive(Debug)]
pub struct FleetEngine<W, Q: FleetQuery<W>> {
    world: Arc<World<W>>,
    shards: Vec<Vec<Entry<Q>>>,
    /// One search scratch per shard, persistent across ticks — every
    /// per-query search transient (frontier heaps, visited marks,
    /// distance slots) of the shard's queries runs through it, so
    /// steady-state ticks allocate nothing.
    scratches: Vec<Q::Scratch>,
    /// Per-shard tick summaries, reused across ticks.
    summaries: Vec<TickSummary>,
    threads: usize,
    /// Hardware parallelism probed once at construction; the effective
    /// worker count of a tick never exceeds it.
    hw: usize,
    next_id: u64,
    len: usize,
    elapsed: Duration,
}

impl<W, Q> FleetEngine<W, Q>
where
    W: Send + Sync,
    Q: FleetQuery<W>,
{
    /// Creates an engine over `world` (shard/thread counts are clamped to
    /// at least 1).
    pub fn new(world: Arc<World<W>>, cfg: FleetConfig) -> FleetEngine<W, Q> {
        let shards = cfg.shards.max(1);
        FleetEngine {
            world,
            shards: (0..shards).map(|_| Vec::new()).collect(),
            scratches: (0..shards).map(|_| Q::Scratch::default()).collect(),
            summaries: vec![TickSummary::default(); shards],
            threads: cfg.threads.max(1),
            hw: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(usize::MAX),
            next_id: 0,
            len: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// The shared world.
    pub fn world(&self) -> &Arc<World<W>> {
        &self.world
    }

    /// Number of live queries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Worker threads used by [`FleetEngine::tick_all`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Registers a query; returns its id. Ids are sequential from 0, so
    /// while no query is deregistered, `QueryId::index` doubles as a
    /// dense index into caller-side position tables.
    ///
    /// The query is bound to *this* engine's world snapshot on insert —
    /// epochs are world-relative, so a query created against a different
    /// `World` could otherwise carry a matching epoch number and keep
    /// answering from the wrong data set undetected. A freshly created
    /// (never ticked) query pays nothing for this; a warm query pays one
    /// recomputation at its next tick.
    pub fn register(&mut self, mut query: Q) -> QueryId {
        let (epoch, snapshot) = self.world.snapshot();
        query.bind(epoch, &snapshot);
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let shard = id.index() % self.shards.len();
        self.shards[shard].push(Entry {
            id,
            query,
            stale: 0,
        });
        self.len += 1;
        id
    }

    /// Removes a query, returning it (with its cumulative statistics).
    pub fn deregister(&mut self, id: QueryId) -> Option<Q> {
        let shard_at = id.index() % self.shards.len();
        let shard = &mut self.shards[shard_at];
        let at = shard.iter().position(|e| e.id == id)?;
        self.len -= 1;
        Some(shard.remove(at).query)
    }

    /// Read access to a live query.
    pub fn query(&self, id: QueryId) -> Option<&Q> {
        self.shards[id.index() % self.shards.len()]
            .iter()
            .find(|e| e.id == id)
            .map(|e| &e.query)
    }

    /// Visits every live query in shard order (registration order within
    /// a shard) — the same deterministic order
    /// [`FleetEngine::tick_all_outcomes`] reports in, so results of a
    /// tick can be paired with their queries in one O(n) pass instead of
    /// n per-id [`FleetEngine::query`] scans.
    pub fn for_each_query(&self, mut f: impl FnMut(QueryId, &Q)) {
        for shard in &self.shards {
            for e in shard {
                f(e.id, &e.query);
            }
        }
    }

    /// All live query ids, ascending.
    pub fn ids(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> = self
            .shards
            .iter()
            .flat_map(|s| s.iter().map(|e| e.id))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Advances the fleet one timestamp under an explicit [`TickPolicy`]
    /// — the one tick entry point behind every serving mode.
    ///
    /// `positions` maps a query id to its [`TickPos`] for this tick; it
    /// is called from worker threads and must be pure (same id → same
    /// answer within one call). `sink` receives one [`TickDisposition`]
    /// per live query, in deterministic shard order. Queries that
    /// actually tick and are bound to an older epoch than the world's
    /// current one are rebound first (paying a recomputation on this
    /// tick); re-served queries keep their old snapshot until the policy
    /// forces a refresh.
    ///
    /// # Panics
    ///
    /// Under [`TickPolicy::Barrier`], if `positions` returns anything
    /// but [`TickPos::Fresh`] for a live query.
    pub fn tick<F, K>(&mut self, policy: TickPolicy, positions: F, sink: &mut K) -> TickSummary
    where
        F: Fn(QueryId) -> TickPos<Q::Pos> + Sync,
        K: TickSink + ?Sized,
    {
        if K::RECORDS {
            let (summary, per_shard) =
                self.tick_sharded::<F, Vec<(QueryId, TickDisposition)>>(policy, positions);
            for shard in per_shard {
                for (id, disposition) in shard {
                    sink.record(id, disposition);
                }
            }
            summary
        } else {
            self.tick_sharded::<F, ()>(policy, positions).0
        }
    }

    /// Advances every query to its position for this timestamp — the
    /// [`TickPolicy::Barrier`] convenience wrapper over
    /// [`FleetEngine::tick`] with a non-recording sink (its hot path is
    /// unchanged: recording compiles away entirely).
    ///
    /// `positions` maps a query id to its new position; it is called from
    /// worker threads and must be pure (same id → same position within
    /// one call). Queries bound to an older epoch than the world's
    /// current one are rebound first (paying a recomputation on this
    /// tick), so a [`World::publish`] between ticks reaches the whole
    /// fleet exactly once.
    pub fn tick_all<F>(&mut self, positions: F) -> TickSummary
    where
        F: Fn(QueryId) -> Q::Pos + Sync,
    {
        self.tick(
            TickPolicy::Barrier,
            |id| TickPos::Fresh(positions(id)),
            &mut (),
        )
    }

    /// [`FleetEngine::tick_all`] that additionally reports every query's
    /// individual [`TickOutcome`], appended to `out` in shard order
    /// (registration order within a shard) — deterministic at any thread
    /// count, like everything else here. `out` is cleared first. A thin
    /// wrapper over [`FleetEngine::tick`] with a `Vec` sink.
    pub fn tick_all_outcomes<F>(
        &mut self,
        positions: F,
        out: &mut Vec<(QueryId, TickOutcome)>,
    ) -> TickSummary
    where
        F: Fn(QueryId) -> Q::Pos + Sync,
    {
        out.clear();
        self.tick(TickPolicy::Barrier, |id| TickPos::Fresh(positions(id)), out)
    }

    /// The one tick loop behind every policy: `R` is the per-shard
    /// disposition recorder (`()` = record nothing).
    fn tick_sharded<F, R>(&mut self, policy: TickPolicy, positions: F) -> (TickSummary, Vec<R>)
    where
        F: Fn(QueryId) -> TickPos<Q::Pos> + Sync,
        R: TickSink + Default + Send,
    {
        let t0 = Instant::now();
        let (epoch, snapshot) = self.world.snapshot();
        let n_shards = self.shards.len();
        // Never oversubscribe: more workers than the host has cores buys
        // nothing but scheduler overhead (results are bit-identical at
        // every worker count), so the configured thread cap is clamped to
        // the hardware parallelism probed at construction.
        let threads = self.threads.min(n_shards).min(self.hw).max(1);
        self.summaries.clear();
        self.summaries.resize(n_shards, TickSummary::default());
        let mut recorded: Vec<R> = (0..n_shards).map(|_| R::default()).collect();

        // Pre-tick bookkeeping shared by every path that actually
        // advances a query: reset staleness, rebind if the epoch moved.
        let tick_entry = |entry: &mut Entry<Q>, out: &mut TickSummary| {
            entry.stale = 0;
            if entry.query.bound_epoch() != epoch {
                entry.query.bind(epoch, &snapshot);
                out.rebinds += 1;
            }
        };
        let tick_shard = |shard: &mut Vec<Entry<Q>>,
                          scratch: &mut Q::Scratch,
                          out: &mut TickSummary,
                          rec: &mut R| {
            out.epoch = epoch;
            match policy {
                TickPolicy::Barrier => {
                    for entry in shard.iter_mut() {
                        let TickPos::Fresh(pos) = positions(entry.id) else {
                            panic!("TickPolicy::Barrier requires a fresh position for every live query");
                        };
                        tick_entry(entry, out);
                        let outcome = entry.query.tick_with(scratch, pos);
                        out.record(outcome);
                        rec.record(entry.id, TickDisposition::Fresh(outcome));
                    }
                }
                TickPolicy::Deadline { max_staleness } => {
                    for entry in shard.iter_mut() {
                        match positions(entry.id) {
                            TickPos::Fresh(pos) => {
                                tick_entry(entry, out);
                                let outcome = entry.query.tick_with(scratch, pos);
                                out.record(outcome);
                                rec.record(entry.id, TickDisposition::Fresh(outcome));
                            }
                            TickPos::Held(pos) => {
                                entry.stale += 1;
                                if entry.stale > max_staleness {
                                    tick_entry(entry, out);
                                    let outcome = entry.query.tick_with(scratch, pos);
                                    out.record(outcome);
                                    out.refreshed += 1;
                                    rec.record(entry.id, TickDisposition::Refreshed(outcome));
                                } else {
                                    out.stale += 1;
                                    rec.record(entry.id, TickDisposition::Stale);
                                }
                            }
                            TickPos::Missing => {
                                entry.stale += 1;
                                out.stale += 1;
                                rec.record(entry.id, TickDisposition::Stale);
                            }
                        }
                    }
                }
            }
        };

        if threads == 1 {
            for (((shard, scratch), out), rec) in self
                .shards
                .iter_mut()
                .zip(self.scratches.iter_mut())
                .zip(self.summaries.iter_mut())
                .zip(recorded.iter_mut())
            {
                tick_shard(shard, scratch, out, rec);
            }
        } else {
            let chunk = n_shards.div_ceil(threads);
            let tick_shard = &tick_shard;
            std::thread::scope(|scope| {
                for (((shards, scratches), outs), recs) in self
                    .shards
                    .chunks_mut(chunk)
                    .zip(self.scratches.chunks_mut(chunk))
                    .zip(self.summaries.chunks_mut(chunk))
                    .zip(recorded.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for (((shard, scratch), out), rec) in shards
                            .iter_mut()
                            .zip(scratches.iter_mut())
                            .zip(outs.iter_mut())
                            .zip(recs.iter_mut())
                        {
                            tick_shard(shard, scratch, out, rec);
                        }
                    });
                }
            });
        }

        // Merge in shard order: identical totals at any thread count.
        let mut summary = TickSummary {
            epoch,
            ..TickSummary::default()
        };
        for s in &self.summaries {
            summary.absorb(s);
        }
        self.elapsed += t0.elapsed();
        (summary, recorded)
    }

    /// Aggregated fleet statistics: per-shard [`QueryStats`] merges (in
    /// shard order) plus the fleet-wide total — deterministic at any
    /// thread count.
    pub fn stats(&self) -> FleetStats {
        let per_shard: Vec<QueryStats> = self
            .shards
            .iter()
            .map(|shard| {
                let mut merged = QueryStats::default();
                for e in shard {
                    merged.merge(e.query.stats());
                }
                merged
            })
            .collect();
        let mut total = QueryStats::default();
        for s in &per_shard {
            total.merge(s);
        }
        FleetStats {
            per_shard,
            total,
            queries: self.len,
            elapsed: self.elapsed,
        }
    }

    /// Clears every query's statistics (keeps query state).
    pub fn reset_stats(&mut self) {
        for shard in &mut self.shards {
            for e in shard {
                e.query.reset_stats();
            }
        }
        self.elapsed = Duration::ZERO;
    }
}

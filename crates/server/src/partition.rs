//! Spatial partition maps: assigning planar positions to regions.
//!
//! The cluster layer (`insq-cluster`) splits one world into N regional
//! worlds, each serving the clients whose position falls in its region.
//! This module defines the map itself: a [`Partitioner`] is a total
//! assignment of planar positions to [`RegionId`]s plus a distance
//! measure to each region, which is what makes the **overlap margin**
//! contract checkable — a partition replicates every site within
//! distance `m` of its region, so a query inside the region whose k-th
//! neighbor lies within `m` provably sees the exact global kNN.
//!
//! [`GridPartitioner`] is the stock implementation (a `gx × gy`
//! rectangular grid over a bounding box); anything implementing the
//! trait plugs into the same cluster machinery.

use insq_geom::{Aabb, Point};

/// Identifies one partition region. Regions are dense: a partitioner
/// with `n` regions uses ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RegionId(pub u32);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A total assignment of planar positions to partition regions.
///
/// Requirements on implementations:
///
/// * **Total**: every finite position maps to exactly one region
///   ([`Partitioner::region_of`]), its *home*.
/// * **Consistent distance**: [`Partitioner::distance_to`] returns the
///   Euclidean distance from a position to the region's point set, `0.0`
///   when the position's home is that region. The margin contract
///   (replicate all sites with `distance_to(r, site) <= margin`) builds
///   on it: for any query `q` homed in `r` and any site `s`,
///   `distance_to(r, s) <= |q - s|`, so every site within `margin` of
///   `q` is replicated into `r`.
pub trait Partitioner {
    /// How many regions this map has (ids are `0..regions()`).
    fn regions(&self) -> usize;

    /// The home region of a position.
    fn region_of(&self, pos: Point) -> RegionId;

    /// Euclidean distance from `pos` to `region`'s point set (`0.0`
    /// inside).
    fn distance_to(&self, region: RegionId, pos: Point) -> f64;

    /// Whether `region`'s replica set covers `pos` under `margin`
    /// (home region or within the overlap band).
    fn covers(&self, region: RegionId, pos: Point, margin: f64) -> bool {
        self.distance_to(region, pos) <= margin
    }
}

/// A `gx × gy` rectangular grid over a bounding box: the stock
/// [`Partitioner`].
///
/// Positions outside the box are clamped onto it, so the map stays total
/// (moving clients may legitimately wander past the data bounds). Cell
/// rectangles are closed; a position exactly on an interior border is
/// homed in the higher-indexed cell (floor semantics), deterministically.
#[derive(Debug, Clone)]
pub struct GridPartitioner {
    bounds: Aabb,
    gx: u32,
    gy: u32,
}

impl GridPartitioner {
    /// A `gx × gy` grid over `bounds`. Panics if either count is zero or
    /// the bounds are degenerate (zero width or height with more than
    /// one cell along that axis).
    pub fn new(bounds: Aabb, gx: u32, gy: u32) -> GridPartitioner {
        assert!(gx >= 1 && gy >= 1, "grid must have at least one cell");
        assert!(
            (bounds.width() > 0.0 || gx == 1) && (bounds.height() > 0.0 || gy == 1),
            "degenerate bounds cannot be split"
        );
        GridPartitioner { bounds, gx, gy }
    }

    /// A 1 × n vertical-strip grid (the common road-trip layout: borders
    /// are vertical lines, clients cross them moving horizontally).
    pub fn strips(bounds: Aabb, n: u32) -> GridPartitioner {
        GridPartitioner::new(bounds, n, 1)
    }

    /// The bounding box the grid covers.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Grid shape `(gx, gy)`.
    pub fn shape(&self) -> (u32, u32) {
        (self.gx, self.gy)
    }

    /// The closed rectangle of one region.
    pub fn cell(&self, region: RegionId) -> Aabb {
        assert!((region.0 as usize) < self.regions(), "region out of range");
        let (cx, cy) = (region.0 % self.gx, region.0 / self.gx);
        let w = self.bounds.width() / self.gx as f64;
        let h = self.bounds.height() / self.gy as f64;
        let min = Point::new(
            self.bounds.min.x + w * cx as f64,
            self.bounds.min.y + h * cy as f64,
        );
        // The outer row/column extends to the exact bounds, immune to
        // accumulated rounding.
        let max = Point::new(
            if cx + 1 == self.gx {
                self.bounds.max.x
            } else {
                self.bounds.min.x + w * (cx + 1) as f64
            },
            if cy + 1 == self.gy {
                self.bounds.max.y
            } else {
                self.bounds.min.y + h * (cy + 1) as f64
            },
        );
        Aabb::new(min, max)
    }

    fn axis_cell(v: f64, lo: f64, extent: f64, n: u32) -> u32 {
        if n == 1 || extent <= 0.0 {
            return 0;
        }
        let t = ((v - lo) / extent).clamp(0.0, 1.0);
        ((t * n as f64) as u32).min(n - 1)
    }
}

impl Partitioner for GridPartitioner {
    fn regions(&self) -> usize {
        (self.gx as usize) * (self.gy as usize)
    }

    fn region_of(&self, pos: Point) -> RegionId {
        let cx = Self::axis_cell(pos.x, self.bounds.min.x, self.bounds.width(), self.gx);
        let cy = Self::axis_cell(pos.y, self.bounds.min.y, self.bounds.height(), self.gy);
        RegionId(cy * self.gx + cx)
    }

    fn distance_to(&self, region: RegionId, pos: Point) -> f64 {
        self.cell(region).min_dist_sq(pos).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit100() -> Aabb {
        Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn strips_home_and_distance() {
        let p = GridPartitioner::strips(unit100(), 4);
        assert_eq!(p.regions(), 4);
        assert_eq!(p.region_of(Point::new(10.0, 50.0)), RegionId(0));
        assert_eq!(p.region_of(Point::new(99.9, 1.0)), RegionId(3));
        // Clamped outside positions stay total.
        assert_eq!(p.region_of(Point::new(-5.0, 50.0)), RegionId(0));
        assert_eq!(p.region_of(Point::new(500.0, 50.0)), RegionId(3));
        // Distance to the neighboring strip is the gap to its border.
        let d = p.distance_to(RegionId(1), Point::new(10.0, 50.0));
        assert!((d - 15.0).abs() < 1e-12, "{d}");
        assert_eq!(p.distance_to(RegionId(0), Point::new(10.0, 50.0)), 0.0);
    }

    #[test]
    fn grid_cells_tile_the_bounds() {
        let p = GridPartitioner::new(unit100(), 3, 2);
        assert_eq!(p.regions(), 6);
        let mut area = 0.0;
        for r in 0..6 {
            area += p.cell(RegionId(r)).area();
        }
        assert!((area - unit100().area()).abs() < 1e-9);
        // Every cell's center homes to that cell.
        for r in 0..6u32 {
            let c = p.cell(RegionId(r)).center();
            assert_eq!(p.region_of(c), RegionId(r));
        }
    }

    #[test]
    fn covers_is_home_plus_margin_band() {
        let p = GridPartitioner::strips(unit100(), 2);
        let q = Point::new(47.0, 50.0); // 3 units left of the x=50 border
        assert!(p.covers(RegionId(0), q, 0.0));
        assert!(!p.covers(RegionId(1), q, 2.9));
        assert!(p.covers(RegionId(1), q, 3.0));
    }

    #[test]
    fn border_position_homes_deterministically_low() {
        let p = GridPartitioner::strips(unit100(), 2);
        // Exactly on the interior border: floor((50/100)*2) = 1, so the
        // *upper* cell — deterministic either way, pin it.
        assert_eq!(p.region_of(Point::new(50.0, 10.0)), RegionId(1));
    }
}

//! Epoch-versioned shared worlds.
//!
//! The INSQ server owns the data-object index; clients only hold guard
//! sets certified against it (paper §III). When data objects change, the
//! server rebuilds the index and *publishes* it: the [`World`] swaps its
//! snapshot atomically and bumps the [`Epoch`]. Live queries keep reading
//! their old `Arc`-held snapshot — results stay exact against the epoch
//! they are bound to — and self-rebind to the new snapshot at their next
//! tick, paying exactly one recomputation. This replaces the manual
//! `rebind` dance of single-query code (`examples/data_updates.rs`).

use std::sync::{Arc, RwLock};

use insq_roadnet::{NetworkVoronoi, RoadNetwork, SiteSet};

/// A monotonically increasing world version. Epoch 0 is the world a
/// [`World`] was created with; every [`World::publish`] bumps it by one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u64);

impl std::fmt::Display for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "epoch {}", self.0)
    }
}

impl Epoch {
    /// The next epoch.
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

/// An epoch-versioned, shareable world: the server side of the INSQ
/// system. `S` is the snapshot payload — [`insq_index::VorTree`] for the
/// Euclidean mode, [`NetworkWorld`] for road networks.
///
/// Readers take cheap `Arc` snapshots and are never blocked by a publish
/// for longer than the pointer swap; old snapshots stay alive until the
/// last query drops them (no tearing, no torn reads, no manual lifetime
/// management).
#[derive(Debug)]
pub struct World<S> {
    state: RwLock<(Epoch, Arc<S>)>,
}

impl<S> World<S> {
    /// Creates a world at epoch 0.
    pub fn new(data: S) -> World<S> {
        World::from_arc(Arc::new(data))
    }

    /// Creates a world at epoch 0 from an already-shared snapshot.
    pub fn from_arc(data: Arc<S>) -> World<S> {
        World {
            state: RwLock::new((Epoch(0), data)),
        }
    }

    /// The current epoch.
    pub fn epoch(&self) -> Epoch {
        self.state.read().expect("world lock poisoned").0
    }

    /// The current epoch and its snapshot, taken atomically.
    pub fn snapshot(&self) -> (Epoch, Arc<S>) {
        let guard = self.state.read().expect("world lock poisoned");
        (guard.0, Arc::clone(&guard.1))
    }

    /// Publishes a rebuilt snapshot, bumping the epoch. Returns the new
    /// epoch. Existing snapshot holders are unaffected; queries observe
    /// the bump at their next tick and self-rebind.
    pub fn publish(&self, data: S) -> Epoch {
        self.publish_arc(Arc::new(data))
    }

    /// [`World::publish`] for an already-shared snapshot (lets sweeps
    /// republish the same prebuilt index without a rebuild).
    pub fn publish_arc(&self, data: Arc<S>) -> Epoch {
        let mut guard = self.state.write().expect("world lock poisoned");
        guard.0 = guard.0.next();
        guard.1 = data;
        guard.0
    }
}

/// The road-network world snapshot: the (stable) network plus the
/// per-epoch site set and its precomputed network Voronoi diagram.
///
/// Data-object updates replace `sites`/`nvd`; the network itself is
/// assumed fixed across epochs (the paper's setting: POIs change, streets
/// do not).
#[derive(Debug)]
pub struct NetworkWorld {
    /// The road network (shared unchanged across epochs).
    pub net: Arc<RoadNetwork>,
    /// The data objects of this epoch.
    pub sites: Arc<SiteSet>,
    /// The network Voronoi diagram of `sites` over `net`.
    pub nvd: Arc<NetworkVoronoi>,
}

impl NetworkWorld {
    /// Builds a snapshot from a network and site set, computing the NVD.
    pub fn build(net: Arc<RoadNetwork>, sites: SiteSet) -> NetworkWorld {
        let nvd = NetworkVoronoi::build(&net, &sites);
        NetworkWorld {
            net,
            sites: Arc::new(sites),
            nvd: Arc::new(nvd),
        }
    }

    /// The next epoch's snapshot: same network, new site set (the server
    /// half of a data-object update).
    pub fn with_sites(&self, sites: SiteSet) -> NetworkWorld {
        NetworkWorld::build(Arc::clone(&self.net), sites)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_bump_and_snapshots_stay_alive() {
        let world = World::new(vec![1, 2, 3]);
        assert_eq!(world.epoch(), Epoch(0));
        let (e0, snap0) = world.snapshot();
        assert_eq!(e0, Epoch(0));

        let e1 = world.publish(vec![4, 5]);
        assert_eq!(e1, Epoch(1));
        assert_eq!(world.epoch(), Epoch(1));

        // The old snapshot is unaffected by the publish.
        assert_eq!(*snap0, vec![1, 2, 3]);
        let (e, snap1) = world.snapshot();
        assert_eq!(e, Epoch(1));
        assert_eq!(*snap1, vec![4, 5]);
    }

    #[test]
    fn publish_arc_reuses_prebuilt_snapshots() {
        let a = Arc::new(7u32);
        let b = Arc::new(8u32);
        let world = World::from_arc(Arc::clone(&a));
        world.publish_arc(Arc::clone(&b));
        assert!(Arc::ptr_eq(&world.snapshot().1, &b));
        world.publish_arc(a);
        assert_eq!(world.epoch(), Epoch(2));
    }

    #[test]
    fn epoch_display_and_next() {
        assert_eq!(Epoch(3).next(), Epoch(4));
        assert_eq!(format!("{}", Epoch(3)), "epoch 3");
    }
}

//! Epoch-versioned shared worlds.
//!
//! The INSQ server owns the data-object index; clients only hold guard
//! sets certified against it (paper §III). When data objects change, the
//! server has two routes to the next epoch:
//!
//! * [`World::publish`] — swap in a *wholly rebuilt* snapshot (O(n log n)
//!   construction);
//! * [`World::apply`] — **delta epochs**: available for every snapshot
//!   type implementing [`insq_core::DeltaIndex`] (`VorTree`,
//!   `WeightedVorTree`, [`NetworkWorld`] — one space-generic impl serves
//!   all of them). The current snapshot is patched copy-on-write (cost
//!   proportional to the delta's neighborhood, see
//!   `insq_index::VorTree::apply` /
//!   `insq_roadnet::NetworkVoronoi::insert_site` /
//!   `insq_roadnet::NetworkVoronoi::reweight_edges`) and the patched
//!   clone published. Structures untouched by the delta are shared via
//!   `Arc` where the snapshot allows it (a [`NetworkWorld`] keeps its
//!   road network across pure site-churn deltas; a traffic delta — a
//!   `NetDelta` carrying edge re-weights — replaces it with a
//!   re-weighted copy and repairs the NVD locally from the changed
//!   edges).
//!
//! Either way the [`World`] swaps its snapshot atomically and bumps the
//! [`Epoch`]. Live queries keep reading their old `Arc`-held snapshot —
//! results stay exact against the epoch they are bound to — and
//! self-rebind to the new snapshot at their next tick, paying exactly one
//! recomputation. This replaces the manual `rebind` dance of single-query
//! code (`examples/data_updates.rs`).

use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use insq_core::DeltaIndex;

pub use insq_roadnet::NetworkWorld;

/// A monotonically increasing world version. Epoch 0 is the world a
/// [`World`] was created with; every [`World::publish`] bumps it by one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u64);

impl std::fmt::Display for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "epoch {}", self.0)
    }
}

impl Epoch {
    /// The next epoch.
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

/// An epoch-versioned, shareable world: the server side of the INSQ
/// system. `S` is the snapshot payload — any [`insq_core::Space`]'s
/// `Index` type ([`insq_index::VorTree`],
/// [`insq_index::WeightedVorTree`], [`NetworkWorld`]).
///
/// Readers take cheap `Arc` snapshots and are never blocked by a publish
/// for longer than the pointer swap; old snapshots stay alive until the
/// last query drops them (no tearing, no torn reads, no manual lifetime
/// management). Every operation is poison-immune: a panicking reader or
/// writer elsewhere never turns later calls into panics.
#[derive(Debug)]
pub struct World<S> {
    state: RwLock<(Epoch, Arc<S>)>,
    /// Serialises writers: `apply` is a read-modify-write, so two
    /// concurrent appliers (or an applier racing a publisher) must not
    /// interleave. Readers are never blocked by this lock.
    writer: Mutex<()>,
}

impl<S> World<S> {
    /// Creates a world at epoch 0.
    pub fn new(data: S) -> World<S> {
        World::from_arc(Arc::new(data))
    }

    /// Creates a world at epoch 0 from an already-shared snapshot.
    pub fn from_arc(data: Arc<S>) -> World<S> {
        World {
            state: RwLock::new((Epoch(0), data)),
            writer: Mutex::new(()),
        }
    }

    fn read_state(&self) -> RwLockReadGuard<'_, (Epoch, Arc<S>)> {
        self.state.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_state(&self) -> RwLockWriteGuard<'_, (Epoch, Arc<S>)> {
        self.state.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_writer(&self) -> MutexGuard<'_, ()> {
        self.writer.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current epoch.
    pub fn epoch(&self) -> Epoch {
        self.read_state().0
    }

    /// The current epoch and its snapshot, taken atomically.
    pub fn snapshot(&self) -> (Epoch, Arc<S>) {
        let guard = self.read_state();
        (guard.0, Arc::clone(&guard.1))
    }

    /// Publishes a rebuilt snapshot, bumping the epoch. Returns the new
    /// epoch. Existing snapshot holders are unaffected; queries observe
    /// the bump at their next tick and self-rebind.
    pub fn publish(&self, data: S) -> Epoch {
        self.publish_arc(Arc::new(data))
    }

    /// [`World::publish`] for an already-shared snapshot (lets sweeps
    /// republish the same prebuilt index without a rebuild).
    pub fn publish_arc(&self, data: Arc<S>) -> Epoch {
        let _serial = self.lock_writer();
        self.swap_in(data)
    }

    /// The snapshot swap itself (callers hold the writer lock).
    fn swap_in(&self, data: Arc<S>) -> Epoch {
        let mut guard = self.write_state();
        guard.0 = guard.0.next();
        guard.1 = data;
        guard.0
    }
}

impl<S: DeltaIndex> World<S> {
    /// Applies a batched delta as a **delta epoch**: the current snapshot
    /// is patched copy-on-write ([`DeltaIndex::apply_delta`] — local
    /// repair, no rebuild) and the patched clone published. Cost scales
    /// with the delta's neighborhood instead of O(n log n); queries
    /// rebind exactly as they do for a full [`World::publish`].
    ///
    /// On error nothing is published and the world is unchanged — a
    /// rejected delta (stale removal id, duplicate insertion, …) comes
    /// back as the snapshot's error value, never a panic. Concurrent
    /// `apply`/`publish` calls serialise; readers are never blocked for
    /// longer than the final pointer swap.
    pub fn apply(&self, delta: &S::Delta) -> Result<Epoch, S::Error> {
        let _serial = self.lock_writer();
        let current = Arc::clone(&self.read_state().1);
        let next = current.apply_delta(delta)?;
        Ok(self.swap_in(Arc::new(next)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_index::{SiteDelta, VorTree};
    use insq_roadnet::{NetDelta, NetSiteDelta, NetworkVoronoi, SiteSet};

    #[test]
    fn epochs_bump_and_snapshots_stay_alive() {
        let world = World::new(vec![1, 2, 3]);
        assert_eq!(world.epoch(), Epoch(0));
        let (e0, snap0) = world.snapshot();
        assert_eq!(e0, Epoch(0));

        let e1 = world.publish(vec![4, 5]);
        assert_eq!(e1, Epoch(1));
        assert_eq!(world.epoch(), Epoch(1));

        // The old snapshot is unaffected by the publish.
        assert_eq!(*snap0, vec![1, 2, 3]);
        let (e, snap1) = world.snapshot();
        assert_eq!(e, Epoch(1));
        assert_eq!(*snap1, vec![4, 5]);
    }

    #[test]
    fn publish_arc_reuses_prebuilt_snapshots() {
        let a = Arc::new(7u32);
        let b = Arc::new(8u32);
        let world = World::from_arc(Arc::clone(&a));
        world.publish_arc(Arc::clone(&b));
        assert!(Arc::ptr_eq(&world.snapshot().1, &b));
        world.publish_arc(a);
        assert_eq!(world.epoch(), Epoch(2));
    }

    #[test]
    fn epoch_display_and_next() {
        assert_eq!(Epoch(3).next(), Epoch(4));
        assert_eq!(format!("{}", Epoch(3)), "epoch 3");
    }

    fn small_vortree_world() -> World<VorTree> {
        let mut state = 0x77u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let pts: Vec<insq_geom::Point> = (0..40)
            .map(|_| insq_geom::Point::new(next() * 100.0, next() * 100.0))
            .collect();
        let bounds = insq_geom::Aabb::new(
            insq_geom::Point::new(-10.0, -10.0),
            insq_geom::Point::new(110.0, 110.0),
        );
        World::new(VorTree::build(pts, bounds).unwrap())
    }

    #[test]
    fn apply_publishes_a_patched_clone() {
        use insq_voronoi::SiteId;
        let world = small_vortree_world();
        let (e0, snap0) = world.snapshot();
        let n0 = snap0.len();

        let delta = SiteDelta {
            added: vec![insq_geom::Point::new(51.3, 49.2)],
            removed: vec![SiteId(3)],
        };
        let e1 = world.apply(&delta).unwrap();
        assert_eq!(e1, e0.next());
        let (_, snap1) = world.snapshot();
        assert_eq!(snap1.len(), n0, "one added, one removed");
        // The old snapshot is untouched (copy-on-write).
        assert_eq!(snap0.len(), n0);
        assert!(!Arc::ptr_eq(&snap0, &snap1));
        assert!(snap1
            .voronoi()
            .points()
            .contains(&insq_geom::Point::new(51.3, 49.2)));
    }

    #[test]
    fn failed_apply_publishes_nothing() {
        let world = small_vortree_world();
        let (e0, snap0) = world.snapshot();
        let dup = snap0.voronoi().point(insq_voronoi::SiteId(0));
        let err = world.apply(&SiteDelta::insert(vec![dup]));
        assert!(err.is_err());
        let (e, snap) = world.snapshot();
        assert_eq!(e, e0, "no epoch bump on failure");
        assert!(Arc::ptr_eq(&snap0, &snap), "snapshot unchanged on failure");

        // A stale (out-of-range) removal id errors cleanly too — it must
        // not panic, which would poison the writer lock and kill every
        // future apply/publish on this world.
        let err = world.apply(&SiteDelta::remove(vec![insq_voronoi::SiteId(4242)]));
        assert!(matches!(
            err,
            Err(insq_voronoi::VoronoiError::SiteOutOfRange { site: 4242, .. })
        ));
        assert_eq!(world.epoch(), e0);
        // The world stays fully usable.
        let ok = world.apply(&SiteDelta::insert(vec![insq_geom::Point::new(3.25, 4.75)]));
        assert_eq!(ok.unwrap(), e0.next());
    }

    #[test]
    fn weighted_worlds_apply_deltas_through_the_same_impl() {
        use insq_index::{AxisWeights, WeightedVorTree};
        let bounds = insq_geom::Aabb::new(
            insq_geom::Point::new(-10.0, -10.0),
            insq_geom::Point::new(110.0, 110.0),
        );
        let pts: Vec<insq_geom::Point> = (0..20)
            .map(|i| insq_geom::Point::new((i % 5) as f64 * 20.0, (i / 5) as f64 * 25.0 + 1.0))
            .collect();
        let w = AxisWeights::new(1.0, 2.0).unwrap();
        let world = World::new(WeightedVorTree::build(pts, bounds, w).unwrap());
        let e1 = world
            .apply(&SiteDelta::insert(vec![insq_geom::Point::new(33.3, 44.4)]))
            .unwrap();
        assert_eq!(e1, Epoch(1));
        assert_eq!(world.snapshot().1.len(), 21);
    }

    #[test]
    fn network_apply_shares_the_road_network() {
        use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};
        use insq_roadnet::{SiteIdx, VertexId};
        let net = Arc::new(grid_network(&GridConfig::default(), 9).unwrap());
        let sites = SiteSet::new(&net, random_site_vertices(&net, 6, 4).unwrap()).unwrap();
        let world = World::new(NetworkWorld::build(Arc::clone(&net), sites));
        let (_, snap0) = world.snapshot();

        // Pick a vertex without a site.
        let free = (0..net.num_vertices() as u32)
            .map(VertexId)
            .find(|&v| snap0.sites.site_at(v).is_none())
            .unwrap();
        let delta = NetDelta::from(NetSiteDelta {
            added: vec![free],
            removed: vec![SiteIdx(1)],
        });
        world.apply(&delta).unwrap();
        let (_, snap1) = world.snapshot();
        assert!(
            Arc::ptr_eq(&snap0.net, &snap1.net),
            "the network is shared across site-only delta epochs"
        );
        assert!(!Arc::ptr_eq(&snap0.nvd, &snap1.nvd));
        assert_eq!(snap1.sites.len(), snap0.sites.len());
        // The patched NVD equals a from-scratch build over the new sites.
        let rebuilt = NetworkVoronoi::build(&net, &snap1.sites);
        for s in 0..snap1.sites.len() as u32 {
            assert_eq!(
                snap1.nvd.neighbors(SiteIdx(s)),
                rebuilt.neighbors(SiteIdx(s))
            );
        }
    }

    #[test]
    fn network_traffic_delta_is_an_epoch_like_any_other() {
        use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};
        use insq_roadnet::{EdgeId, EdgeWeight};
        let net = Arc::new(grid_network(&GridConfig::default(), 77).unwrap());
        let sites = SiteSet::new(&net, random_site_vertices(&net, 6, 4).unwrap()).unwrap();
        let world = World::new(NetworkWorld::build(Arc::clone(&net), sites));
        let (e0, snap0) = world.snapshot();

        // Congest three edges 2x; the epoch bumps and the new snapshot
        // carries the re-weighted network, while live holders of the old
        // snapshot keep free-flow lengths.
        let storm: Vec<EdgeWeight> = (0..3)
            .map(|e| EdgeWeight::scaled(&net, EdgeId(e), 2.0))
            .collect();
        let e1 = world.apply(&NetDelta::reweight(storm)).unwrap();
        assert_eq!(e1, e0.next());
        let (_, snap1) = world.snapshot();
        assert!(!Arc::ptr_eq(&snap0.net, &snap1.net));
        assert_eq!(snap1.net.edge(EdgeId(0)).len, net.edge(EdgeId(0)).len * 2.0);
        assert_eq!(snap0.net.edge(EdgeId(0)).len, net.edge(EdgeId(0)).len);

        // A rejected traffic delta (zero length) publishes nothing and
        // leaves the world usable.
        let bad = NetDelta::reweight(vec![EdgeWeight {
            edge: EdgeId(1),
            len: 0.0,
        }]);
        assert!(world.apply(&bad).is_err());
        assert_eq!(world.epoch(), e1);
        let clear: Vec<EdgeWeight> = (0..3)
            .map(|e| EdgeWeight {
                edge: EdgeId(e),
                len: net.edge(EdgeId(e)).len,
            })
            .collect();
        assert_eq!(world.apply(&NetDelta::reweight(clear)).unwrap(), e1.next());
    }
}

//! Fleet clients: epoch-aware moving-kNN queries.
//!
//! A [`FleetQuery`] is a [`MovingKnn`] processor that additionally knows
//! which world [`Epoch`] it is bound to and how to rebind itself to a
//! newly published snapshot. The [`crate::FleetEngine`] compares each
//! query's bound epoch against the world's current epoch at tick time and
//! calls [`FleetQuery::bind`] on the stale ones — the fleet equivalent of
//! the paper's "if there are data object updates, we also update the kNN
//! set and the IS".

use std::sync::Arc;

use insq_core::{
    CoreError, InsConfig, InsProcessor, MovingKnn, NetInsConfig, NetInsProcessor, QueryStats,
};
use insq_geom::Point;
use insq_index::VorTree;
use insq_roadnet::{NetPosition, NetworkVoronoi, RoadNetwork, SiteIdx, SiteSet};
use insq_voronoi::SiteId;

use crate::world::{Epoch, NetworkWorld, World};

/// A live query in a fleet: a moving-kNN processor bound to one epoch of
/// a shared world `W`.
pub trait FleetQuery<W>: MovingKnn<Self::Pos, Self::Id> + Send {
    /// The position type ticks are driven with.
    type Pos: Copy + Send;
    /// The data-object identifier type of results.
    type Id;

    /// The epoch of the snapshot the query currently holds.
    fn bound_epoch(&self) -> Epoch;

    /// Rebinds the query to a newly published snapshot. The next tick
    /// pays one full recomputation; statistics are preserved.
    fn bind(&mut self, epoch: Epoch, snapshot: &Arc<W>);
}

/// A Euclidean INS fleet client over a `World<VorTree>`.
#[derive(Debug, Clone)]
pub struct InsFleetQuery {
    epoch: Epoch,
    proc: InsProcessor<Arc<VorTree>>,
}

impl InsFleetQuery {
    /// Creates a client bound to the world's current snapshot.
    pub fn new(world: &World<VorTree>, cfg: InsConfig) -> Result<InsFleetQuery, CoreError> {
        let (epoch, index) = world.snapshot();
        Ok(InsFleetQuery {
            epoch,
            proc: InsProcessor::new(index, cfg)?,
        })
    }

    /// The wrapped INS processor (current kNN, guard set, safe region…).
    pub fn processor(&self) -> &InsProcessor<Arc<VorTree>> {
        &self.proc
    }
}

impl MovingKnn<Point, SiteId> for InsFleetQuery {
    fn name(&self) -> &'static str {
        self.proc.name()
    }

    fn tick(&mut self, pos: Point) -> insq_core::TickOutcome {
        self.proc.tick(pos)
    }

    fn current_knn(&self) -> Vec<SiteId> {
        self.proc.current_knn()
    }

    fn stats(&self) -> &QueryStats {
        self.proc.stats()
    }

    fn reset_stats(&mut self) {
        self.proc.reset_stats();
    }
}

impl FleetQuery<VorTree> for InsFleetQuery {
    type Pos = Point;
    type Id = SiteId;

    fn bound_epoch(&self) -> Epoch {
        self.epoch
    }

    fn bind(&mut self, epoch: Epoch, snapshot: &Arc<VorTree>) {
        self.proc.rebind(Arc::clone(snapshot));
        self.epoch = epoch;
    }
}

/// A road-network INS fleet client over a `World<NetworkWorld>`.
#[derive(Debug)]
pub struct NetFleetQuery {
    epoch: Epoch,
    proc: NetInsProcessor<Arc<RoadNetwork>, Arc<SiteSet>, Arc<NetworkVoronoi>>,
}

impl NetFleetQuery {
    /// Creates a client bound to the world's current snapshot.
    pub fn new(world: &World<NetworkWorld>, cfg: NetInsConfig) -> Result<NetFleetQuery, CoreError> {
        let (epoch, snap) = world.snapshot();
        Ok(NetFleetQuery {
            epoch,
            proc: NetInsProcessor::new(
                Arc::clone(&snap.net),
                Arc::clone(&snap.sites),
                Arc::clone(&snap.nvd),
                cfg,
            )?,
        })
    }

    /// The wrapped network INS processor.
    pub fn processor(
        &self,
    ) -> &NetInsProcessor<Arc<RoadNetwork>, Arc<SiteSet>, Arc<NetworkVoronoi>> {
        &self.proc
    }
}

impl MovingKnn<NetPosition, SiteIdx> for NetFleetQuery {
    fn name(&self) -> &'static str {
        self.proc.name()
    }

    fn tick(&mut self, pos: NetPosition) -> insq_core::TickOutcome {
        self.proc.tick(pos)
    }

    fn current_knn(&self) -> Vec<SiteIdx> {
        self.proc.current_knn()
    }

    fn stats(&self) -> &QueryStats {
        self.proc.stats()
    }

    fn reset_stats(&mut self) {
        self.proc.reset_stats();
    }
}

impl FleetQuery<NetworkWorld> for NetFleetQuery {
    type Pos = NetPosition;
    type Id = SiteIdx;

    fn bound_epoch(&self) -> Epoch {
        self.epoch
    }

    fn bind(&mut self, epoch: Epoch, snapshot: &Arc<NetworkWorld>) {
        // Rebind the network too: `NetworkWorld`'s fields are public, so
        // a published snapshot may carry a different network (map update)
        // whose site set / NVD index into *its* adjacency. In the common
        // POIs-changed case this is a no-op `Arc` clone.
        self.proc.rebind_world(
            Arc::clone(&snapshot.net),
            Arc::clone(&snapshot.sites),
            Arc::clone(&snapshot.nvd),
        );
        self.epoch = epoch;
    }
}

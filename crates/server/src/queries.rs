//! Fleet clients: epoch-aware moving-kNN queries.
//!
//! A [`FleetQuery`] is a [`MovingKnn`] processor that additionally knows
//! which world [`Epoch`] it is bound to and how to rebind itself to a
//! newly published snapshot. The [`crate::FleetEngine`] compares each
//! query's bound epoch against the world's current epoch at tick time and
//! calls [`FleetQuery::bind`] on the stale ones — the fleet equivalent of
//! the paper's "if there are data object updates, we also update the kNN
//! set and the IS".
//!
//! There is exactly one implementation: the space-generic
//! [`SpaceQuery`], wrapping the generic `insq_core::Processor` over an
//! `Arc` snapshot of the world. [`InsFleetQuery`], [`NetFleetQuery`] and
//! [`WFleetQuery`] are its per-space aliases; a new space gets its fleet
//! client for free.

use std::sync::Arc;

use insq_core::{CoreError, InsConfig, MovingKnn, Processor, QueryStats, Space, TickOutcome};

use crate::world::{Epoch, World};

/// A live query in a fleet: a moving-kNN processor bound to one epoch of
/// a shared world `W`.
pub trait FleetQuery<W>: MovingKnn<Self::Pos, Self::Id> + Send {
    /// The position type ticks are driven with.
    type Pos: Copy + Send;
    /// The data-object identifier type of results.
    type Id;
    /// Reusable search scratch threaded through [`FleetQuery::tick_with`].
    /// A default scratch is empty (backing storage appears on first use,
    /// sized to the bound index), so the [`crate::FleetEngine`] keeps one
    /// per *shard* — persistent across ticks — instead of one per query.
    type Scratch: Default + Send + std::fmt::Debug;

    /// The epoch of the snapshot the query currently holds.
    fn bound_epoch(&self) -> Epoch;

    /// Rebinds the query to a newly published snapshot. The next tick
    /// pays one full recomputation; statistics are preserved.
    fn bind(&mut self, epoch: Epoch, snapshot: &Arc<W>);

    /// Advances the query one timestamp using a caller-provided scratch
    /// — the allocation-free hot path [`crate::FleetEngine::tick`] runs,
    /// bit-identical to `MovingKnn::tick` at the same position.
    fn tick_with(&mut self, scratch: &mut Self::Scratch, pos: Self::Pos) -> TickOutcome;
}

/// An INS fleet client over a `World<S::Index>`, for any [`Space`] `S`.
#[derive(Clone)]
pub struct SpaceQuery<S: Space> {
    epoch: Epoch,
    proc: Processor<S, Arc<S::Index>>,
}

/// A Euclidean INS fleet client over a `World<VorTree>`.
pub type InsFleetQuery = SpaceQuery<insq_core::Euclidean>;

/// A road-network INS fleet client over a `World<NetworkWorld>`.
pub type NetFleetQuery = SpaceQuery<insq_core::Network>;

/// A weighted-Euclidean INS fleet client over a `World<WeightedVorTree>`.
pub type WFleetQuery = SpaceQuery<insq_core::WeightedEuclidean>;

impl<S: Space> SpaceQuery<S> {
    /// Creates a client bound to the world's current snapshot.
    pub fn new(world: &World<S::Index>, cfg: InsConfig) -> Result<SpaceQuery<S>, CoreError> {
        let (epoch, index) = world.snapshot();
        Ok(SpaceQuery {
            epoch,
            proc: Processor::new(index, cfg)?,
        })
    }

    /// The wrapped INS processor (current kNN, guard set, …).
    pub fn processor(&self) -> &Processor<S, Arc<S::Index>> {
        &self.proc
    }
}

impl<S: Space> std::fmt::Debug for SpaceQuery<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpaceQuery")
            .field("space", &S::NAME)
            .field("epoch", &self.epoch)
            .field("knn", &self.proc.current_knn())
            .finish_non_exhaustive()
    }
}

impl<S: Space> MovingKnn<S::Pos, S::SiteId> for SpaceQuery<S> {
    fn name(&self) -> &'static str {
        self.proc.name()
    }

    fn tick(&mut self, pos: S::Pos) -> TickOutcome {
        self.proc.tick(pos)
    }

    fn current_knn(&self) -> Vec<S::SiteId> {
        self.proc.current_knn()
    }

    fn stats(&self) -> &QueryStats {
        self.proc.stats()
    }

    fn reset_stats(&mut self) {
        self.proc.reset_stats();
    }
}

impl<S: Space> FleetQuery<S::Index> for SpaceQuery<S> {
    type Pos = S::Pos;
    type Id = S::SiteId;
    type Scratch = S::Scratch;

    fn bound_epoch(&self) -> Epoch {
        self.epoch
    }

    fn tick_with(&mut self, scratch: &mut S::Scratch, pos: S::Pos) -> TickOutcome {
        self.proc.tick_with(scratch, pos)
    }

    fn bind(&mut self, epoch: Epoch, snapshot: &Arc<S::Index>) {
        // The whole snapshot is rebound — on road networks a published
        // snapshot may carry a different network (map update) whose site
        // set / NVD index into *its* adjacency; in the common
        // POIs-changed case the unchanged parts are shared via `Arc` and
        // rebinding them is free.
        self.proc.rebind(Arc::clone(snapshot));
        self.epoch = epoch;
    }
}

//! # insq-server
//!
//! The INSQ query-processing *system* layer (paper §III pitches INSQ as a
//! server maintaining moving kNN results for many clients at once): a
//! concurrent multi-query **fleet engine** over a shared,
//! **epoch-versioned world**.
//!
//! * [`World`] / [`Epoch`] — the server-owned index (`VorTree` for the
//!   Euclidean plane, [`NetworkWorld`] = road network + sites + NVD for
//!   networks), published atomically. Data-object updates become a
//!   [`World::publish`] (full rebuild) or — the cheap path — a **delta
//!   epoch** via `World::apply` (`insq_index::SiteDelta` /
//!   `insq_roadnet::NetSiteDelta`): the snapshot is cloned copy-on-write
//!   and patched incrementally, at cost proportional to the delta
//!   instead of O(n log n). Live queries detect the epoch bump at their
//!   next tick and self-rebind either way, replacing the manual `rebind`
//!   dance of single-query code.
//! * [`FleetEngine`] — a sharded registry of live queries (each a
//!   [`insq_core::MovingKnn`] implementor wrapped as a [`FleetQuery`]),
//!   ticked in parallel batches on a scoped-thread worker pool with
//!   deterministic per-shard scheduling: results and statistics are
//!   bit-identical to sequential execution at any thread count.
//! * [`FleetStats`] — per-shard [`insq_core::QueryStats`] aggregation
//!   surfacing fleet throughput (ticks/s, validations/tick, recompute
//!   rate).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use insq_core::InsConfig;
//! use insq_geom::{Aabb, Point};
//! use insq_index::VorTree;
//! use insq_server::{FleetConfig, FleetEngine, InsFleetQuery, World};
//!
//! // Server side: the epoch-versioned world.
//! let bounds = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
//! let pts = (0..200).map(|i| Point::new((i % 20) as f64 * 5.0, (i / 20) as f64 * 10.0 + 0.5 * (i % 7) as f64)).collect();
//! let world = Arc::new(World::new(VorTree::build(pts, bounds.inflated(10.0)).unwrap()));
//!
//! // Fleet side: register clients, tick them all per timestamp.
//! let mut fleet = FleetEngine::new(Arc::clone(&world), FleetConfig::with_threads(2));
//! for _ in 0..50 {
//!     let q = InsFleetQuery::new(&world, InsConfig::with_k(4)).unwrap();
//!     fleet.register(q);
//! }
//! for tick in 0..20 {
//!     let summary = fleet.tick_all(|id| {
//!         Point::new(5.0 + (id.0 % 90) as f64, 5.0 + 0.4 * tick as f64)
//!     });
//!     assert_eq!(summary.ticked, 50);
//! }
//! assert_eq!(fleet.stats().total.ticks, 50 * 20);
//! ```
//!
//! A mid-run data-object update is one call — `world.publish(new_index)`
//! — and the next `tick_all` rebinds every query exactly once (see
//! `examples/fleet.rs` and the epoch model section of the README).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fleet;
pub mod queries;
pub mod util;
pub mod world;

pub use fleet::{FleetConfig, FleetEngine, FleetStats, QueryId, TickSummary};
pub use queries::{FleetQuery, InsFleetQuery, NetFleetQuery};
pub use util::parallel_map;
pub use world::{Epoch, NetworkWorld, World};

/// Compile-time thread-safety assertions: every type the fleet engine
/// shares or moves across worker threads must stay `Send + Sync`. A
/// regression (e.g. an `Rc` or `RefCell` slipping into an index) fails
/// compilation here rather than deep inside a scoped-thread bound.
#[allow(dead_code)]
fn assert_thread_safety() {
    fn assert_send_sync<T: Send + Sync>() {}
    use std::sync::Arc;

    // Substrates.
    assert_send_sync::<insq_index::RTree>();
    assert_send_sync::<insq_index::VorTree>();
    assert_send_sync::<insq_roadnet::RoadNetwork>();
    assert_send_sync::<insq_roadnet::SiteSet>();
    assert_send_sync::<insq_roadnet::NetworkVoronoi>();

    // Processors, in both borrow flavors.
    assert_send_sync::<insq_core::InsProcessor<&'static insq_index::VorTree>>();
    assert_send_sync::<insq_core::InsProcessor<Arc<insq_index::VorTree>>>();
    assert_send_sync::<
        insq_core::NetInsProcessor<
            &'static insq_roadnet::RoadNetwork,
            &'static insq_roadnet::SiteSet,
            &'static insq_roadnet::NetworkVoronoi,
        >,
    >();
    assert_send_sync::<
        insq_core::NetInsProcessor<
            Arc<insq_roadnet::RoadNetwork>,
            Arc<insq_roadnet::SiteSet>,
            Arc<insq_roadnet::NetworkVoronoi>,
        >,
    >();

    // Server layer.
    assert_send_sync::<World<insq_index::VorTree>>();
    assert_send_sync::<World<NetworkWorld>>();
    assert_send_sync::<InsFleetQuery>();
    assert_send_sync::<NetFleetQuery>();
    assert_send_sync::<FleetEngine<insq_index::VorTree, InsFleetQuery>>();
    assert_send_sync::<FleetEngine<NetworkWorld, NetFleetQuery>>();
}

//! # insq-server
//!
//! The INSQ query-processing *system* layer (paper §III pitches INSQ as a
//! server maintaining moving kNN results for many clients at once): a
//! concurrent multi-query **fleet engine** over a shared,
//! **epoch-versioned world** — all of it generic over the
//! `insq_core::Space` a deployment runs in.
//!
//! * [`World`] / [`Epoch`] — the server-owned index snapshot (any
//!   space's `Index` type: `VorTree`, `WeightedVorTree`,
//!   [`NetworkWorld`]), published atomically. Data-object updates become
//!   a [`World::publish`] (full rebuild) or — the cheap path — a **delta
//!   epoch** via [`World::apply`], one generic implementation over
//!   `insq_core::DeltaIndex`: the snapshot is cloned copy-on-write and
//!   patched incrementally, at cost proportional to the delta instead of
//!   O(n log n). Live queries detect the epoch bump at their next tick
//!   and self-rebind either way.
//! * [`SpaceQuery`] — the one fleet-client implementation, wrapping the
//!   generic `insq_core::Processor` over an `Arc` world snapshot.
//!   [`InsFleetQuery`] / [`NetFleetQuery`] / [`WFleetQuery`] are its
//!   per-space aliases.
//! * [`FleetEngine`] — a sharded registry of live queries, ticked in
//!   parallel batches on a scoped-thread worker pool with deterministic
//!   per-shard scheduling: results and statistics are bit-identical to
//!   sequential execution at any thread count, in every space
//!   (`tests/space_conformance.rs` runs the same harness over all of
//!   them).
//! * [`FleetStats`] — per-shard [`insq_core::QueryStats`] aggregation
//!   surfacing fleet throughput (ticks/s, validations/tick, recompute
//!   rate).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use insq_core::InsConfig;
//! use insq_geom::{Aabb, Point};
//! use insq_index::VorTree;
//! use insq_server::{FleetConfig, FleetEngine, InsFleetQuery, World};
//!
//! // Server side: the epoch-versioned world.
//! let bounds = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
//! let pts = (0..200).map(|i| Point::new((i % 20) as f64 * 5.0, (i / 20) as f64 * 10.0 + 0.5 * (i % 7) as f64)).collect();
//! let world = Arc::new(World::new(VorTree::build(pts, bounds.inflated(10.0)).unwrap()));
//!
//! // Fleet side: register clients, tick them all per timestamp.
//! let mut fleet = FleetEngine::new(Arc::clone(&world), FleetConfig::with_threads(2));
//! for _ in 0..50 {
//!     let q = InsFleetQuery::new(&world, InsConfig::with_k(4)).unwrap();
//!     fleet.register(q);
//! }
//! for tick in 0..20 {
//!     let summary = fleet.tick_all(|id| {
//!         Point::new(5.0 + (id.0 % 90) as f64, 5.0 + 0.4 * tick as f64)
//!     });
//!     assert_eq!(summary.ticked, 50);
//! }
//! assert_eq!(fleet.stats().total.ticks, 50 * 20);
//! ```
//!
//! A mid-run data-object update is one call — `world.publish(new_index)`
//! — and the next `tick_all` rebinds every query exactly once (see
//! `examples/fleet.rs` and the epoch model section of the README).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fleet;
pub mod partition;
pub mod queries;
pub mod util;
pub mod world;

pub use fleet::{
    FleetConfig, FleetEngine, FleetStats, QueryId, TickDisposition, TickPolicy, TickPos, TickSink,
    TickSummary,
};
pub use partition::{GridPartitioner, Partitioner, RegionId};
pub use queries::{FleetQuery, InsFleetQuery, NetFleetQuery, SpaceQuery, WFleetQuery};
pub use util::parallel_map;
pub use world::{Epoch, NetworkWorld, World};

/// Compile-time thread-safety assertions: every type the fleet engine
/// shares or moves across worker threads must stay `Send + Sync`. A
/// regression (e.g. an `Rc` or `RefCell` slipping into an index) fails
/// compilation here rather than deep inside a scoped-thread bound.
#[allow(dead_code)]
fn assert_thread_safety() {
    fn assert_send_sync<T: Send + Sync>() {}
    use insq_core::{Euclidean, Network, Processor, Space, WeightedEuclidean};
    use std::sync::Arc;

    // Substrates.
    assert_send_sync::<insq_index::RTree>();
    assert_send_sync::<insq_index::VorTree>();
    assert_send_sync::<insq_index::WeightedVorTree>();
    assert_send_sync::<insq_roadnet::RoadNetwork>();
    assert_send_sync::<insq_roadnet::SiteSet>();
    assert_send_sync::<insq_roadnet::NetworkVoronoi>();
    assert_send_sync::<NetworkWorld>();

    // The generic processor, in both borrow flavors, for every space —
    // including any future one: this function is itself generic.
    fn assert_space<S: Space>() {
        assert_send_sync::<Processor<S, &'static S::Index>>();
        assert_send_sync::<Processor<S, Arc<S::Index>>>();
        assert_send_sync::<World<S::Index>>();
        assert_send_sync::<SpaceQuery<S>>();
        assert_send_sync::<FleetEngine<S::Index, SpaceQuery<S>>>();
    }
    assert_space::<Euclidean>();
    assert_space::<Network>();
    assert_space::<WeightedEuclidean>();
}

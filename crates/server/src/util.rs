//! Small shared concurrency utilities.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::PoisonError;

/// Maps `f` over `items` on up to `available_parallelism` threads,
/// preserving order.
///
/// Items are claimed from an atomic counter, so the mapping order across
/// threads is arbitrary but the result order always matches the input
/// order (slot `i` holds `f(&items[i])`).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(n.max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<R>>> = (0..n).map(|_| None.into()).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                // Poison-immune: each slot is written exactly once, so a
                // panic elsewhere never invalidates this slot's value.
                *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("all slots filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_maps_everything() {
        let out = parallel_map((0..500).collect(), |&x: &i32| x * 2);
        assert_eq!(out.len(), 500);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i as i32);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = parallel_map(Vec::<u8>::new(), |&x| x);
        assert!(out.is_empty());
    }
}

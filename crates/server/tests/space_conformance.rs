//! Cross-space conformance: ONE generic harness, every registered
//! `Space`.
//!
//! For each space the same scenario is driven three ways and must agree:
//!
//! 1. **Brute force** — a sequential single-query run whose result is
//!    checked against `Space::brute_knn` at sampled ticks (including
//!    across the mid-run epoch swap);
//! 2. **Sequential reference** — the same run's final kNN and
//!    `QueryStats`, per client;
//! 3. **Fleet engine** — `tick_all` at thread counts 1/2/8, which must
//!    reproduce the sequential reference bit-for-bit, per client and in
//!    aggregate.
//!
//! The harness body is generic over `insq_workload::SpaceWorkload` and
//! contains no per-space branches; a new space gets this entire suite by
//! adding one `#[test]` instantiation line.

use std::sync::Arc;

use insq_core::{
    Euclidean, InsConfig, MovingKnn, Network, Processor, QueryStats, WeightedEuclidean,
};
use insq_server::{FleetConfig, FleetEngine, QueryId, SpaceQuery, World};
use insq_workload::{FleetScenario, SpaceWorkload};

/// Runs the full conformance protocol for one space over one scenario.
fn conformance<S: SpaceWorkload>(sc: &FleetScenario) {
    let fleet_state = S::make_fleet(sc);
    let idx_v0 = Arc::new(S::build_index(sc, &fleet_state, 0));
    let idx_v1 = Arc::new(S::build_index(sc, &fleet_state, 1));
    let swap_at = sc.updates.first().copied().unwrap_or(sc.ticks);

    // 1 + 2: sequential reference with brute-force agreement checks.
    let reference: Vec<(Vec<S::SiteId>, QueryStats)> = (0..sc.clients)
        .map(|c| {
            let mut p = Processor::<S, _>::new(Arc::clone(&idx_v0), InsConfig::new(sc.k, sc.rho))
                .expect("valid scenario config");
            for tick in 0..sc.ticks {
                if tick == swap_at {
                    p.rebind(Arc::clone(&idx_v1));
                }
                let pos = S::position(sc, &fleet_state, c, tick);
                p.tick(pos);
                if tick % 7 == 0 || tick + 1 == sc.ticks || tick == swap_at {
                    let live = if tick >= swap_at { &idx_v1 } else { &idx_v0 };
                    let mut got = p.current_knn();
                    got.sort_unstable();
                    let mut want = S::brute(live, pos, sc.k);
                    want.sort_unstable();
                    assert_eq!(
                        got, want,
                        "client {c} diverged from brute force at tick {tick}"
                    );
                }
            }
            (p.current_knn(), *p.stats())
        })
        .collect();

    let mut reference_total = QueryStats::default();
    for (_, s) in &reference {
        reference_total.merge(s);
    }
    // Sanity: the epoch swap really reached every client (1 initial + 1
    // post-swap recomputation at minimum).
    assert!(reference_total.recomputations >= 2 * sc.clients as u64);

    // 3: the fleet engine must be bit-identical at every thread count.
    for threads in [1usize, 2, 8] {
        let world = Arc::new(World::from_arc(Arc::clone(&idx_v0)));
        let mut fleet: FleetEngine<S::Index, SpaceQuery<S>> =
            FleetEngine::new(Arc::clone(&world), FleetConfig { shards: 7, threads });
        for _ in 0..sc.clients {
            fleet.register(
                SpaceQuery::<S>::new(&world, InsConfig::new(sc.k, sc.rho)).expect("valid config"),
            );
        }
        for tick in 0..sc.ticks {
            if tick == swap_at {
                world.publish_arc(Arc::clone(&idx_v1));
            }
            let positions: Vec<S::Pos> = (0..sc.clients)
                .map(|c| S::position(sc, &fleet_state, c, tick))
                .collect();
            let summary = fleet.tick_all(|id| positions[id.index()]);
            assert_eq!(summary.ticked as usize, sc.clients, "tick {tick}");
            let expected_rebinds = if tick == swap_at { sc.clients } else { 0 };
            assert_eq!(
                summary.rebinds as usize, expected_rebinds,
                "the epoch bump must reach every query exactly once (tick {tick})"
            );
        }
        let mut fleet_total = QueryStats::default();
        for (c, (ref_knn, ref_stats)) in reference.iter().enumerate() {
            let q = fleet.query(QueryId(c as u64)).expect("registered");
            assert_eq!(
                q.current_knn(),
                *ref_knn,
                "kNN diverged for client {c} (threads={threads})"
            );
            assert_eq!(
                q.stats(),
                ref_stats,
                "stats diverged for client {c} (threads={threads})"
            );
            fleet_total.merge(q.stats());
        }
        assert_eq!(
            fleet_total, reference_total,
            "aggregate stats diverged (threads={threads})"
        );
    }
}

fn euclidean_like_scenario() -> FleetScenario {
    FleetScenario {
        clients: 40,
        n: 800,
        k: 4,
        ticks: 60,
        updates: vec![30],
        axis_weights: (1.0, 2.5),
        seed: 20160501,
        ..Default::default()
    }
}

#[test]
fn euclidean_space_conforms() {
    conformance::<Euclidean>(&euclidean_like_scenario());
}

#[test]
fn weighted_space_conforms() {
    conformance::<WeightedEuclidean>(&euclidean_like_scenario());
}

#[test]
fn network_space_conforms() {
    // Network validation runs a Dijkstra per tick — smaller fleet, same
    // protocol, zero special cases in the harness above.
    conformance::<Network>(&FleetScenario {
        clients: 16,
        n: 120,
        k: 3,
        ticks: 40,
        updates: vec![20],
        speed: 0.2,
        seed: 20160502,
        ..Default::default()
    });
}

//! Regression suite for the documented "`QueryId`s are never reused"
//! invariant: deregistering queries mid-run must not disturb the
//! surviving queries' results or statistics, must keep per-shard stats
//! merging in shard order, and must never hand a departed query's id to
//! a later registration.
//!
//! (The same invariant over a *dropped TCP session* is covered by
//! `insq-net`'s `tests/loopback_soak.rs`.)

use std::collections::HashMap;
use std::sync::Arc;

use insq_core::{InsConfig, MovingKnn, QueryStats, TickOutcome};
use insq_server::{FleetConfig, FleetEngine, InsFleetQuery, QueryId, World};
use insq_workload::{FleetScenario, SpaceWorkload};

type S = insq_core::Euclidean;

fn scenario() -> FleetScenario {
    FleetScenario {
        clients: 12,
        n: 400,
        k: 4,
        ticks: 30,
        updates: vec![],
        seed: 20160720,
        ..Default::default()
    }
}

fn new_engine(
    world: &Arc<World<insq_index::VorTree>>,
    threads: usize,
) -> FleetEngine<insq_index::VorTree, InsFleetQuery> {
    FleetEngine::new(Arc::clone(world), FleetConfig { shards: 5, threads })
}

fn register_n(
    engine: &mut FleetEngine<insq_index::VorTree, InsFleetQuery>,
    world: &Arc<World<insq_index::VorTree>>,
    sc: &FleetScenario,
    n: usize,
) -> Vec<QueryId> {
    (0..n)
        .map(|_| engine.register(InsFleetQuery::new(world, InsConfig::new(sc.k, sc.rho)).unwrap()))
        .collect()
}

#[test]
fn ids_are_sequential_and_never_reused() {
    let sc = scenario();
    let fleet_state = S::make_fleet(&sc);
    let world = Arc::new(World::new(S::build_index(&sc, &fleet_state, 0)));
    let mut engine = new_engine(&world, 1);
    let ids = register_n(&mut engine, &world, &sc, 8);
    assert_eq!(ids, (0..8u64).map(QueryId).collect::<Vec<_>>());

    // Deregister from the middle and both ends.
    for gone in [0u64, 3, 7] {
        assert!(engine.deregister(QueryId(gone)).is_some());
    }
    assert_eq!(engine.len(), 5);
    assert_eq!(
        engine.ids(),
        [1u64, 2, 4, 5, 6].map(QueryId).to_vec(),
        "survivors keep their ids, ascending"
    );
    // Deregistering twice is a no-op, not a panic.
    assert!(engine.deregister(QueryId(3)).is_none());

    // New registrations continue the sequence — departed ids are dead
    // forever, so an id can never silently alias a different query.
    let fresh = register_n(&mut engine, &world, &sc, 3);
    assert_eq!(fresh, [8u64, 9, 10].map(QueryId).to_vec());
    assert_eq!(
        engine.ids(),
        [1u64, 2, 4, 5, 6, 8, 9, 10].map(QueryId).to_vec()
    );
}

/// Mid-run churn (deregister two queries, register one new) leaves every
/// surviving query's kNN stream and statistics bit-identical to the
/// run without churn, and keeps shard-order stats merging intact — at
/// multiple thread counts.
#[test]
fn mid_run_churn_leaves_survivors_bit_identical() {
    let sc = scenario();
    // A spare trajectory for the late query.
    let sc_fleet = FleetScenario {
        clients: sc.clients + 1,
        ..sc.clone()
    };
    let fleet_state = S::make_fleet(&sc_fleet);
    let idx = Arc::new(S::build_index(&sc, &fleet_state, 0));
    let churn_at = sc.ticks / 2;
    let dropped = [QueryId(2), QueryId(9)];

    // Reference: no churn, every query runs the full scenario.
    let world = Arc::new(World::from_arc(Arc::clone(&idx)));
    let mut plain = new_engine(&world, 1);
    register_n(&mut plain, &world, &sc, sc.clients);
    for tick in 0..sc.ticks {
        let positions: Vec<_> = (0..sc.clients)
            .map(|c| S::position(&sc, &fleet_state, c, tick))
            .collect();
        plain.tick_all(|id| positions[id.index()]);
    }
    let reference: HashMap<u64, (Vec<u32>, QueryStats)> = plain
        .ids()
        .into_iter()
        .map(|id| {
            let q = plain.query(id).unwrap();
            let knn = q.current_knn().into_iter().map(|s| s.0).collect();
            (id.0, (knn, *q.stats()))
        })
        .collect();

    for threads in [1usize, 2, 8] {
        let world = Arc::new(World::from_arc(Arc::clone(&idx)));
        let mut engine = new_engine(&world, threads);
        register_n(&mut engine, &world, &sc, sc.clients);
        let mut outcomes: Vec<(QueryId, TickOutcome)> = Vec::new();
        for tick in 0..sc.ticks {
            if tick == churn_at {
                for &gone in &dropped {
                    let q = engine.deregister(gone).expect("was live");
                    // The departed query leaves with its cumulative
                    // stats; they match the reference mid-run.
                    assert_eq!(q.stats().ticks, churn_at as u64);
                }
                let late = engine
                    .register(InsFleetQuery::new(&world, InsConfig::new(sc.k, sc.rho)).unwrap());
                assert_eq!(late, QueryId(sc.clients as u64), "never reused");
            }
            let positions: Vec<_> = (0..=sc.clients)
                .map(|c| S::position(&sc, &fleet_state, c, tick))
                .collect();
            let summary = engine.tick_all_outcomes(|id| positions[id.index()], &mut outcomes);
            assert_eq!(summary.ticked as usize, engine.len());
            // tick_all_outcomes reports exactly the live queries.
            let mut reported: Vec<QueryId> = outcomes.iter().map(|&(q, _)| q).collect();
            reported.sort_unstable();
            assert_eq!(reported, engine.ids());
        }

        // Survivors: identical kNN and stats, as if nothing happened.
        for id in engine.ids() {
            if id.0 == sc.clients as u64 {
                continue; // the late query has no reference twin
            }
            let q = engine.query(id).unwrap();
            let knn: Vec<u32> = q.current_knn().into_iter().map(|s| s.0).collect();
            let (ref_knn, ref_stats) = &reference[&id.0];
            assert_eq!(&knn, ref_knn, "kNN diverged for {id:?} ({threads} threads)");
            assert_eq!(q.stats(), ref_stats, "stats diverged for {id:?}");
        }

        // Shard-order stats merging is reproducible: recompute the
        // per-shard merge from the per-query stats (round-robin by id,
        // registration order within a shard) and compare.
        let stats = engine.stats();
        let shards = stats.per_shard.len();
        let mut expect = vec![QueryStats::default(); shards];
        for id in engine.ids() {
            expect[id.index() % shards].merge(engine.query(id).unwrap().stats());
        }
        assert_eq!(stats.per_shard, expect, "shard merge order");
        let mut total = QueryStats::default();
        for s in &expect {
            total.merge(s);
        }
        assert_eq!(stats.total, total);
        assert_eq!(stats.queries, sc.clients - dropped.len() + 1);
    }
}

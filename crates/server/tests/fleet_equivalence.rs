//! Fleet-vs-sequential equivalence: `FleetEngine::tick_all` must produce
//! bit-identical results (kNN sets and `QueryStats`, per query and in
//! aggregate) to driving each query sequentially by hand — at every
//! thread count, including across a mid-run epoch swap.

use std::sync::Arc;

use insq_core::{InsConfig, InsProcessor, MovingKnn, NetInsConfig, NetInsProcessor, QueryStats};
use insq_geom::{Point, Trajectory};
use insq_index::{SiteDelta, VorTree};
use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};
use insq_roadnet::{
    EdgeId, EdgeWeight, NetDelta, NetPosition, NetSiteDelta, NetTrajectory, SiteIdx, SiteSet,
};
use insq_server::{
    FleetConfig, FleetEngine, InsFleetQuery, NetFleetQuery, NetworkWorld, QueryId, World,
};
use insq_voronoi::SiteId;
use insq_workload::FleetScenario;

const CLIENTS: usize = 120;
const TICKS: usize = 80;
const SWAP_AT: usize = 40;

fn scenario() -> FleetScenario {
    FleetScenario {
        clients: CLIENTS,
        n: 1_500,
        k: 4,
        ticks: TICKS,
        updates: vec![SWAP_AT],
        seed: 77,
        ..Default::default()
    }
}

struct PerQuery {
    knn: Vec<insq_voronoi::SiteId>,
    stats: QueryStats,
}

/// The ground truth: each client driven by hand on one thread, with a
/// manual rebind at the swap tick.
fn run_sequential(
    sc: &FleetScenario,
    idx_v0: &VorTree,
    idx_v1: &VorTree,
    trajs: &[Trajectory],
) -> Vec<PerQuery> {
    (0..sc.clients)
        .map(|c| {
            let mut p = InsProcessor::new(idx_v0, InsConfig::new(sc.k, sc.rho)).unwrap();
            for tick in 0..sc.ticks {
                if tick == SWAP_AT {
                    p.rebind(idx_v1);
                }
                p.tick(sc.position(&trajs[c], c, tick));
            }
            PerQuery {
                knn: p.current_knn(),
                stats: *p.stats(),
            }
        })
        .collect()
}

/// The same run through the fleet engine at `threads` workers.
fn run_fleet(
    sc: &FleetScenario,
    idx_v0: &Arc<VorTree>,
    idx_v1: &Arc<VorTree>,
    trajs: &[Trajectory],
    threads: usize,
    shards: usize,
) -> (Vec<PerQuery>, QueryStats) {
    let world = Arc::new(World::from_arc(Arc::clone(idx_v0)));
    let mut fleet: FleetEngine<VorTree, InsFleetQuery> =
        FleetEngine::new(Arc::clone(&world), FleetConfig { shards, threads });
    for _ in 0..sc.clients {
        let q = InsFleetQuery::new(&world, InsConfig::new(sc.k, sc.rho)).unwrap();
        fleet.register(q);
    }

    for tick in 0..sc.ticks {
        if tick == SWAP_AT {
            world.publish_arc(Arc::clone(idx_v1));
        }
        let positions: Vec<Point> = (0..sc.clients)
            .map(|c| sc.position(&trajs[c], c, tick))
            .collect();
        let summary = fleet.tick_all(|id| positions[id.index()]);
        assert_eq!(summary.ticked as usize, sc.clients, "tick {tick}");
        let expected_rebinds = if tick == SWAP_AT { sc.clients } else { 0 };
        assert_eq!(
            summary.rebinds as usize, expected_rebinds,
            "the epoch bump must reach every query exactly once (tick {tick})"
        );
    }

    let per_query: Vec<PerQuery> = (0..sc.clients)
        .map(|c| {
            let q = fleet.query(QueryId(c as u64)).unwrap();
            PerQuery {
                knn: q.current_knn(),
                stats: *q.stats(),
            }
        })
        .collect();
    (per_query, fleet.stats().total)
}

#[test]
fn fleet_matches_sequential_at_every_thread_count_across_epoch_swap() {
    let sc = scenario();
    let idx_v0 = Arc::new(VorTree::build(sc.points(0), sc.clip_window()).unwrap());
    let idx_v1 = Arc::new(VorTree::build(sc.points(1), sc.clip_window()).unwrap());
    let trajs: Vec<Trajectory> = (0..sc.clients).map(|c| sc.client_trajectory(c)).collect();

    let reference = run_sequential(&sc, &idx_v0, &idx_v1, &trajs);
    let mut reference_total = QueryStats::default();
    for r in &reference {
        reference_total.merge(&r.stats);
    }
    // Sanity: the swap really happened and cost each client one extra
    // recomputation (1 initial + 1 post-swap at minimum).
    assert!(reference_total.recomputations >= 2 * sc.clients as u64);

    for threads in [1usize, 2, 8] {
        // An uneven shard count exercises chunked scheduling paths.
        for shards in [7usize, 64] {
            let (fleet, fleet_total) = run_fleet(&sc, &idx_v0, &idx_v1, &trajs, threads, shards);
            assert_eq!(
                fleet_total, reference_total,
                "aggregate stats diverged (threads={threads}, shards={shards})"
            );
            for (c, (f, r)) in fleet.iter().zip(&reference).enumerate() {
                assert_eq!(
                    f.knn, r.knn,
                    "kNN diverged for client {c} (threads={threads}, shards={shards})"
                );
                assert_eq!(
                    f.stats, r.stats,
                    "stats diverged for client {c} (threads={threads}, shards={shards})"
                );
            }
        }
    }

    // Exactness across the swap: final results are the brute-force kNN of
    // the *new* world.
    for c in [0usize, 11, 63, CLIENTS - 1] {
        let pos = sc.position(&trajs[c], c, sc.ticks - 1);
        let mut got = reference[c].knn.clone();
        got.sort_unstable();
        let mut want = idx_v1.voronoi().knn_brute(pos, sc.k);
        want.sort_unstable();
        assert_eq!(got, want, "client {c} must answer from the new epoch");
    }
}

#[test]
fn register_binds_the_query_to_the_engines_world() {
    // Epochs are world-relative: a query created against world A carries
    // Epoch(0) just like world B does. register() must rebind it so it
    // answers from the engine's world, not the one it was created with.
    let sc = scenario();
    let idx_a = Arc::new(VorTree::build(sc.points(0), sc.clip_window()).unwrap());
    let idx_b = Arc::new(VorTree::build(sc.points(1), sc.clip_window()).unwrap());
    let world_a = Arc::new(World::from_arc(idx_a));
    let world_b = Arc::new(World::from_arc(Arc::clone(&idx_b)));

    let stray = InsFleetQuery::new(&world_a, InsConfig::new(sc.k, sc.rho)).unwrap();
    let mut fleet: FleetEngine<VorTree, InsFleetQuery> =
        FleetEngine::new(Arc::clone(&world_b), FleetConfig::with_threads(1));
    let id = fleet.register(stray);

    let pos = Point::new(42.0, 57.0);
    fleet.tick_all(|_| pos);
    let mut got = fleet.query(id).unwrap().current_knn();
    got.sort_unstable();
    let mut want = idx_b.voronoi().knn_brute(pos, sc.k);
    want.sort_unstable();
    assert_eq!(got, want, "results must come from the engine's world");
}

/// Drives a fleet over `idx_v0`, performing `update` at `SWAP_AT`, and
/// returns per-query results plus the aggregate stats.
fn run_fleet_with_update(
    sc: &FleetScenario,
    idx_v0: &Arc<VorTree>,
    trajs: &[Trajectory],
    threads: usize,
    update: impl Fn(&World<VorTree>),
) -> (Vec<PerQuery>, QueryStats) {
    let world = Arc::new(World::from_arc(Arc::clone(idx_v0)));
    let mut fleet: FleetEngine<VorTree, InsFleetQuery> = FleetEngine::new(
        Arc::clone(&world),
        FleetConfig {
            shards: 13,
            threads,
        },
    );
    for _ in 0..sc.clients {
        fleet.register(InsFleetQuery::new(&world, InsConfig::new(sc.k, sc.rho)).unwrap());
    }
    for tick in 0..sc.ticks {
        if tick == SWAP_AT {
            update(&world);
        }
        let positions: Vec<Point> = (0..sc.clients)
            .map(|c| sc.position(&trajs[c], c, tick))
            .collect();
        let summary = fleet.tick_all(|id| positions[id.index()]);
        let expected_rebinds = if tick == SWAP_AT { sc.clients } else { 0 };
        assert_eq!(summary.rebinds as usize, expected_rebinds, "tick {tick}");
    }
    let per_query: Vec<PerQuery> = (0..sc.clients)
        .map(|c| {
            let q = fleet.query(QueryId(c as u64)).unwrap();
            PerQuery {
                knn: q.current_knn(),
                stats: *q.stats(),
            }
        })
        .collect();
    (per_query, fleet.stats().total)
}

/// Delta epochs vs full republish: a mid-run `World::apply` of a
/// `SiteDelta` must give every client results (and statistics)
/// bit-identical to a mid-run `World::publish` of a from-scratch index
/// over the equivalent site set — at every thread count.
#[test]
fn delta_epoch_matches_full_publish_mid_run() {
    let sc = FleetScenario {
        clients: 60,
        n: 900,
        k: 4,
        ticks: TICKS,
        updates: vec![SWAP_AT],
        seed: 1312,
        ..Default::default()
    };
    let idx_v0 = Arc::new(VorTree::build(sc.points(0), sc.clip_window()).unwrap());
    let trajs: Vec<Trajectory> = (0..sc.clients).map(|c| sc.client_trajectory(c)).collect();

    // A mixed batch: 25 insertions drawn from the epoch-1 point pool
    // (deduplicated against the index) and 15 removals.
    let mut added: Vec<Point> = sc.points(1).into_iter().take(40).collect();
    added.retain(|p| !idx_v0.voronoi().points().contains(p));
    added.truncate(25);
    let removed: Vec<SiteId> = (0..15).map(|i| SiteId(i * 37)).collect();
    let delta = SiteDelta { added, removed };

    // The equivalent full-rebuild index: apply the delta to a clone and
    // rebuild from scratch over the resulting (identically ordered) sites.
    let equivalent = {
        let mut patched = (*Arc::clone(&idx_v0)).clone();
        patched.apply(&delta).unwrap();
        Arc::new(VorTree::build(patched.voronoi().points().to_vec(), sc.clip_window()).unwrap())
    };

    let (ref_queries, ref_total) = run_fleet_with_update(&sc, &idx_v0, &trajs, 1, |world| {
        world.publish_arc(Arc::clone(&equivalent));
    });
    for threads in [1usize, 2, 8] {
        let (delta_queries, delta_total) =
            run_fleet_with_update(&sc, &idx_v0, &trajs, threads, |world| {
                world.apply(&delta).unwrap();
            });
        assert_eq!(
            delta_total, ref_total,
            "aggregate stats diverged (threads={threads})"
        );
        for (c, (d, r)) in delta_queries.iter().zip(&ref_queries).enumerate() {
            assert_eq!(
                d.knn, r.knn,
                "kNN diverged for client {c} (threads={threads})"
            );
            assert_eq!(
                d.stats, r.stats,
                "stats diverged for client {c} (threads={threads})"
            );
        }
    }

    // Exactness: final results answer from the post-delta site set.
    let (_, snap) = {
        let world = World::from_arc(Arc::clone(&idx_v0));
        world.apply(&delta).unwrap();
        world.snapshot()
    };
    for c in [0usize, 17, sc.clients - 1] {
        let pos = sc.position(&trajs[c], c, sc.ticks - 1);
        let mut got = ref_queries[c].knn.clone();
        got.sort_unstable();
        let mut want = snap.voronoi().knn_brute(pos, sc.k);
        want.sort_unstable();
        assert_eq!(got, want, "client {c} must answer from the delta epoch");
    }
}

/// Graceful degradation under delta epochs: a `remove`-only delta that
/// shrinks the world below `k` must leave every query answering with all
/// surviving sites (PR 2 covered this for full publishes only).
#[test]
fn delta_shrinks_world_below_k_and_queries_degrade_gracefully() {
    let bounds = insq_geom::Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let mut state = 0x5ca1eu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    let pts: Vec<Point> = (0..7)
        .map(|_| Point::new(next() * 100.0, next() * 100.0))
        .collect();
    let k = 5usize;
    let world = Arc::new(World::new(
        VorTree::build(pts, bounds.inflated(10.0)).unwrap(),
    ));
    let mut fleet: FleetEngine<VorTree, InsFleetQuery> =
        FleetEngine::new(Arc::clone(&world), FleetConfig::with_threads(2));
    for _ in 0..8 {
        fleet.register(InsFleetQuery::new(&world, InsConfig::new(k, 1.6)).unwrap());
    }
    let pos_of = |id: QueryId, tick: usize| {
        Point::new(
            10.0 + (id.0 % 5) as f64 * 17.0,
            10.0 + tick as f64 * 3.0 + (id.0 / 5) as f64 * 11.0,
        )
    };
    for tick in 0..4 {
        fleet.tick_all(|id| pos_of(id, tick));
    }
    for id in fleet.ids() {
        assert_eq!(fleet.query(id).unwrap().current_knn().len(), k);
    }

    // Shrink to 3 sites (< k) with one delta epoch.
    world
        .apply(&SiteDelta::remove(vec![
            SiteId(0),
            SiteId(2),
            SiteId(4),
            SiteId(6),
        ]))
        .unwrap();
    let (_, snap) = world.snapshot();
    assert_eq!(snap.len(), 3);
    for tick in 4..8 {
        let summary = fleet.tick_all(|id| pos_of(id, tick));
        if tick == 4 {
            assert_eq!(summary.rebinds, 8, "the delta epoch reaches every query");
        }
    }
    for id in fleet.ids() {
        let mut got = fleet.query(id).unwrap().current_knn();
        got.sort_unstable();
        let mut want = snap.voronoi().knn_brute(pos_of(id, 7), k);
        want.sort_unstable();
        assert_eq!(got.len(), 3, "all surviving sites are the answer");
        assert_eq!(got, want, "degraded answers stay exact (query {id:?})");
    }

    // Growing back above k with another delta restores full answers.
    let (_, small) = world.snapshot();
    let mut grow = SiteDelta::default();
    while grow.added.len() < 4 {
        let p = Point::new(next() * 100.0, next() * 100.0);
        if !small.voronoi().points().contains(&p) {
            grow.added.push(p);
        }
    }
    world.apply(&grow).unwrap();
    fleet.tick_all(|id| pos_of(id, 8));
    for id in fleet.ids() {
        assert_eq!(fleet.query(id).unwrap().current_knn().len(), k);
    }
}

/// Network delta epochs: `World::apply(NetSiteDelta)` must match a full
/// `publish(with_sites(...))` of the equivalent site set, across thread
/// counts — the road network itself being shared untouched.
#[test]
fn network_delta_epoch_matches_full_publish() {
    let ticks = 40usize;
    let swap_at = 20usize;
    let clients = 20usize;
    let k = 3usize;
    let speed = 0.14;

    let net = Arc::new(
        grid_network(
            &GridConfig {
                cols: 9,
                rows: 9,
                ..GridConfig::default()
            },
            17,
        )
        .unwrap(),
    );
    let sites_a = SiteSet::new(&net, random_site_vertices(&net, 20, 3).unwrap()).unwrap();
    let world_a = NetworkWorld::build(Arc::clone(&net), sites_a.clone());

    // Delta: remove 5 sites, add 4 fresh vertices.
    let mut sites_delta = NetSiteDelta::remove((0..5).map(|i| SiteIdx(i * 3)).collect());
    let mut cursor = 0u32;
    while sites_delta.added.len() < 4 {
        let v = insq_roadnet::VertexId(cursor);
        cursor += 7;
        if sites_a.site_at(v).is_none() {
            sites_delta.added.push(v);
        }
    }
    let delta = NetDelta::from(sites_delta);
    let equivalent_sites = {
        let patched = world_a.apply_delta(&delta).unwrap();
        (*patched.sites).clone()
    };

    let tours: Vec<NetTrajectory> = (0..clients)
        .map(|c| NetTrajectory::random_tour(&net, 5, 900 + c as u64).unwrap())
        .collect();
    let pos_of = |c: usize, tick: usize| -> NetPosition {
        tours[c].position_looped(&net, speed * tick as f64 + 0.27 * c as f64)
    };

    let mut runs: Vec<Vec<(Vec<SiteIdx>, QueryStats)>> = Vec::new();
    for (threads, use_delta) in [(1usize, false), (1, true), (2, true), (8, true)] {
        let world = Arc::new(World::new(NetworkWorld::build(
            Arc::clone(&net),
            sites_a.clone(),
        )));
        let mut fleet: FleetEngine<NetworkWorld, NetFleetQuery> =
            FleetEngine::new(Arc::clone(&world), FleetConfig { shards: 4, threads });
        for _ in 0..clients {
            fleet.register(NetFleetQuery::new(&world, NetInsConfig::new(k, 1.6)).unwrap());
        }
        for tick in 0..ticks {
            if tick == swap_at {
                if use_delta {
                    world.apply(&delta).unwrap();
                } else {
                    let (_, snap) = world.snapshot();
                    world.publish(snap.with_sites(equivalent_sites.clone()));
                }
            }
            let positions: Vec<NetPosition> = (0..clients).map(|c| pos_of(c, tick)).collect();
            fleet.tick_all(|id| positions[id.index()]);
        }
        if use_delta {
            let (_, snap) = world.snapshot();
            assert!(
                Arc::ptr_eq(&snap.net, &net),
                "delta epochs share the road network"
            );
        }
        runs.push(
            (0..clients)
                .map(|c| {
                    let q = fleet.query(QueryId(c as u64)).unwrap();
                    (q.current_knn(), *q.stats())
                })
                .collect(),
        );
    }
    let reference = &runs[0];
    for (r, run) in runs.iter().enumerate().skip(1) {
        for c in 0..clients {
            assert_eq!(
                run[c].0, reference[c].0,
                "kNN diverged (run {r}, client {c})"
            );
            assert_eq!(
                run[c].1, reference[c].1,
                "stats diverged (run {r}, client {c})"
            );
        }
    }
}

/// Traffic epochs: a mid-run [`NetDelta`] carrying edge re-weights (a
/// rush-hour congestion storm) *and* site churn must stream bit-identical
/// to a full `publish` of a from-scratch [`NetworkWorld`] over the
/// re-weighted network — at 1, 2 and 8 threads. Client positions are
/// generated against the free-flow network; congestion only scales
/// lengths up, so on-edge offsets stay valid in every epoch.
#[test]
fn network_fleet_streams_through_a_traffic_epoch() {
    let ticks = 40usize;
    let swap_at = 20usize;
    let clients = 20usize;
    let k = 3usize;
    let speed = 0.14;

    let net = Arc::new(
        grid_network(
            &GridConfig {
                cols: 9,
                rows: 9,
                ..GridConfig::default()
            },
            29,
        )
        .unwrap(),
    );
    let sites_a = SiteSet::new(&net, random_site_vertices(&net, 20, 7).unwrap()).unwrap();
    let world_a = NetworkWorld::build(Arc::clone(&net), sites_a.clone());

    // The rush-hour delta: congest a contiguous block of streets 2.2x,
    // remove 3 sites, add 3 fresh vertices — one atomic epoch.
    let storm: Vec<EdgeWeight> = (0..14)
        .map(|e| EdgeWeight::scaled(&net, EdgeId(e), 2.2))
        .collect();
    let mut sites_delta = NetSiteDelta::remove((0..3).map(|i| SiteIdx(i * 5)).collect());
    let mut cursor = 1u32;
    while sites_delta.added.len() < 3 {
        let v = insq_roadnet::VertexId(cursor);
        cursor += 11;
        if sites_a.site_at(v).is_none() {
            sites_delta.added.push(v);
        }
    }
    let delta = NetDelta::from(sites_delta).with_weights(storm);

    // The publish-mode equivalent: a from-scratch world over the
    // congested network and the post-delta site set.
    let patched = world_a.apply_delta(&delta).unwrap();
    let equivalent = NetworkWorld::build(Arc::clone(&patched.net), (*patched.sites).clone());

    let tours: Vec<NetTrajectory> = (0..clients)
        .map(|c| NetTrajectory::random_tour(&net, 5, 4300 + c as u64).unwrap())
        .collect();
    let pos_of = |c: usize, tick: usize| -> NetPosition {
        tours[c].position_looped(&net, speed * tick as f64 + 0.23 * c as f64)
    };

    let mut runs: Vec<Vec<(Vec<SiteIdx>, QueryStats)>> = Vec::new();
    for (threads, use_delta) in [(1usize, false), (1, true), (2, true), (8, true)] {
        let world = Arc::new(World::new(NetworkWorld::build(
            Arc::clone(&net),
            sites_a.clone(),
        )));
        let mut fleet: FleetEngine<NetworkWorld, NetFleetQuery> =
            FleetEngine::new(Arc::clone(&world), FleetConfig { shards: 4, threads });
        for _ in 0..clients {
            fleet.register(NetFleetQuery::new(&world, NetInsConfig::new(k, 1.6)).unwrap());
        }
        for tick in 0..ticks {
            if tick == swap_at {
                if use_delta {
                    world.apply(&delta).unwrap();
                } else {
                    world.publish(equivalent.clone());
                }
            }
            let positions: Vec<NetPosition> = (0..clients).map(|c| pos_of(c, tick)).collect();
            fleet.tick_all(|id| positions[id.index()]);
        }
        let (_, snap) = world.snapshot();
        assert!(
            !Arc::ptr_eq(&snap.net, &net),
            "a traffic epoch replaces the network"
        );
        assert_eq!(
            snap.net.edge(EdgeId(0)).len,
            net.edge(EdgeId(0)).len * 2.2,
            "congestion applied"
        );
        runs.push(
            (0..clients)
                .map(|c| {
                    let q = fleet.query(QueryId(c as u64)).unwrap();
                    (q.current_knn(), *q.stats())
                })
                .collect(),
        );
    }
    let reference = &runs[0];
    for (r, run) in runs.iter().enumerate().skip(1) {
        for c in 0..clients {
            assert_eq!(
                run[c].0, reference[c].0,
                "traffic-epoch kNN diverged (run {r}, client {c})"
            );
            assert_eq!(
                run[c].1, reference[c].1,
                "traffic-epoch stats diverged (run {r}, client {c})"
            );
        }
    }
}

#[test]
fn network_fleet_matches_sequential_across_epoch_swap() {
    let ticks = 50usize;
    let swap_at = 25usize;
    let clients = 24usize;
    let k = 3usize;
    let speed = 0.12;

    let net = Arc::new(
        grid_network(
            &GridConfig {
                cols: 10,
                rows: 10,
                ..GridConfig::default()
            },
            5,
        )
        .unwrap(),
    );
    let sites_a = SiteSet::new(&net, random_site_vertices(&net, 22, 5).unwrap()).unwrap();
    let sites_b = SiteSet::new(&net, random_site_vertices(&net, 18, 91).unwrap()).unwrap();
    let world_a = NetworkWorld::build(Arc::clone(&net), sites_a.clone());
    let world_b = world_a.with_sites(sites_b.clone());

    let tours: Vec<NetTrajectory> = (0..clients)
        .map(|c| NetTrajectory::random_tour(&net, 6, 100 + c as u64).unwrap())
        .collect();
    let pos_of = |c: usize, tick: usize| -> NetPosition {
        tours[c].position_looped(&net, speed * tick as f64 + 0.31 * c as f64)
    };

    // Sequential reference with a manual rebind.
    let reference: Vec<(Vec<insq_roadnet::SiteIdx>, QueryStats)> = (0..clients)
        .map(|c| {
            let mut p = NetInsProcessor::new(&world_a, NetInsConfig::new(k, 1.6)).unwrap();
            for tick in 0..ticks {
                if tick == swap_at {
                    p.rebind(&world_b);
                }
                p.tick(pos_of(c, tick));
            }
            (p.current_knn(), *p.stats())
        })
        .collect();

    for threads in [1usize, 2, 8] {
        let world = Arc::new(World::new(NetworkWorld::build(
            Arc::clone(&net),
            sites_a.clone(),
        )));
        let mut fleet: FleetEngine<NetworkWorld, NetFleetQuery> =
            FleetEngine::new(Arc::clone(&world), FleetConfig { shards: 5, threads });
        for _ in 0..clients {
            fleet.register(NetFleetQuery::new(&world, NetInsConfig::new(k, 1.6)).unwrap());
        }
        for tick in 0..ticks {
            if tick == swap_at {
                let (_, snap) = world.snapshot();
                world.publish(snap.with_sites(sites_b.clone()));
            }
            let positions: Vec<NetPosition> = (0..clients).map(|c| pos_of(c, tick)).collect();
            let summary = fleet.tick_all(|id| positions[id.index()]);
            assert_eq!(summary.ticked as usize, clients);
        }
        for (c, (ref_knn, ref_stats)) in reference.iter().enumerate() {
            let q = fleet.query(QueryId(c as u64)).unwrap();
            assert_eq!(
                q.current_knn(),
                *ref_knn,
                "client {c} knn, threads={threads}"
            );
            assert_eq!(
                *q.stats(),
                *ref_stats,
                "client {c} stats, threads={threads}"
            );
        }
    }
}

//! Fleet-vs-sequential equivalence: `FleetEngine::tick_all` must produce
//! bit-identical results (kNN sets and `QueryStats`, per query and in
//! aggregate) to driving each query sequentially by hand — at every
//! thread count, including across a mid-run epoch swap.

use std::sync::Arc;

use insq_core::{InsConfig, InsProcessor, MovingKnn, NetInsConfig, NetInsProcessor, QueryStats};
use insq_geom::{Point, Trajectory};
use insq_index::VorTree;
use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};
use insq_roadnet::{NetPosition, NetTrajectory, NetworkVoronoi, SiteSet};
use insq_server::{
    FleetConfig, FleetEngine, InsFleetQuery, NetFleetQuery, NetworkWorld, QueryId, World,
};
use insq_workload::FleetScenario;

const CLIENTS: usize = 120;
const TICKS: usize = 80;
const SWAP_AT: usize = 40;

fn scenario() -> FleetScenario {
    FleetScenario {
        clients: CLIENTS,
        n: 1_500,
        k: 4,
        ticks: TICKS,
        updates: vec![SWAP_AT],
        seed: 77,
        ..Default::default()
    }
}

struct PerQuery {
    knn: Vec<insq_voronoi::SiteId>,
    stats: QueryStats,
}

/// The ground truth: each client driven by hand on one thread, with a
/// manual rebind at the swap tick.
fn run_sequential(
    sc: &FleetScenario,
    idx_v0: &VorTree,
    idx_v1: &VorTree,
    trajs: &[Trajectory],
) -> Vec<PerQuery> {
    (0..sc.clients)
        .map(|c| {
            let mut p = InsProcessor::new(idx_v0, InsConfig::new(sc.k, sc.rho)).unwrap();
            for tick in 0..sc.ticks {
                if tick == SWAP_AT {
                    p.rebind(idx_v1);
                }
                p.tick(sc.position(&trajs[c], c, tick));
            }
            PerQuery {
                knn: p.current_knn(),
                stats: *p.stats(),
            }
        })
        .collect()
}

/// The same run through the fleet engine at `threads` workers.
fn run_fleet(
    sc: &FleetScenario,
    idx_v0: &Arc<VorTree>,
    idx_v1: &Arc<VorTree>,
    trajs: &[Trajectory],
    threads: usize,
    shards: usize,
) -> (Vec<PerQuery>, QueryStats) {
    let world = Arc::new(World::from_arc(Arc::clone(idx_v0)));
    let mut fleet: FleetEngine<VorTree, InsFleetQuery> =
        FleetEngine::new(Arc::clone(&world), FleetConfig { shards, threads });
    for _ in 0..sc.clients {
        let q = InsFleetQuery::new(&world, InsConfig::new(sc.k, sc.rho)).unwrap();
        fleet.register(q);
    }

    for tick in 0..sc.ticks {
        if tick == SWAP_AT {
            world.publish_arc(Arc::clone(idx_v1));
        }
        let positions: Vec<Point> = (0..sc.clients)
            .map(|c| sc.position(&trajs[c], c, tick))
            .collect();
        let summary = fleet.tick_all(|id| positions[id.index()]);
        assert_eq!(summary.ticked as usize, sc.clients, "tick {tick}");
        let expected_rebinds = if tick == SWAP_AT { sc.clients } else { 0 };
        assert_eq!(
            summary.rebinds as usize, expected_rebinds,
            "the epoch bump must reach every query exactly once (tick {tick})"
        );
    }

    let per_query: Vec<PerQuery> = (0..sc.clients)
        .map(|c| {
            let q = fleet.query(QueryId(c as u64)).unwrap();
            PerQuery {
                knn: q.current_knn(),
                stats: *q.stats(),
            }
        })
        .collect();
    (per_query, fleet.stats().total)
}

#[test]
fn fleet_matches_sequential_at_every_thread_count_across_epoch_swap() {
    let sc = scenario();
    let idx_v0 = Arc::new(VorTree::build(sc.points(0), sc.clip_window()).unwrap());
    let idx_v1 = Arc::new(VorTree::build(sc.points(1), sc.clip_window()).unwrap());
    let trajs: Vec<Trajectory> = (0..sc.clients).map(|c| sc.client_trajectory(c)).collect();

    let reference = run_sequential(&sc, &idx_v0, &idx_v1, &trajs);
    let mut reference_total = QueryStats::default();
    for r in &reference {
        reference_total.merge(&r.stats);
    }
    // Sanity: the swap really happened and cost each client one extra
    // recomputation (1 initial + 1 post-swap at minimum).
    assert!(reference_total.recomputations >= 2 * sc.clients as u64);

    for threads in [1usize, 2, 8] {
        // An uneven shard count exercises chunked scheduling paths.
        for shards in [7usize, 64] {
            let (fleet, fleet_total) = run_fleet(&sc, &idx_v0, &idx_v1, &trajs, threads, shards);
            assert_eq!(
                fleet_total, reference_total,
                "aggregate stats diverged (threads={threads}, shards={shards})"
            );
            for (c, (f, r)) in fleet.iter().zip(&reference).enumerate() {
                assert_eq!(
                    f.knn, r.knn,
                    "kNN diverged for client {c} (threads={threads}, shards={shards})"
                );
                assert_eq!(
                    f.stats, r.stats,
                    "stats diverged for client {c} (threads={threads}, shards={shards})"
                );
            }
        }
    }

    // Exactness across the swap: final results are the brute-force kNN of
    // the *new* world.
    for c in [0usize, 11, 63, CLIENTS - 1] {
        let pos = sc.position(&trajs[c], c, sc.ticks - 1);
        let mut got = reference[c].knn.clone();
        got.sort_unstable();
        let mut want = idx_v1.voronoi().knn_brute(pos, sc.k);
        want.sort_unstable();
        assert_eq!(got, want, "client {c} must answer from the new epoch");
    }
}

#[test]
fn register_binds_the_query_to_the_engines_world() {
    // Epochs are world-relative: a query created against world A carries
    // Epoch(0) just like world B does. register() must rebind it so it
    // answers from the engine's world, not the one it was created with.
    let sc = scenario();
    let idx_a = Arc::new(VorTree::build(sc.points(0), sc.clip_window()).unwrap());
    let idx_b = Arc::new(VorTree::build(sc.points(1), sc.clip_window()).unwrap());
    let world_a = Arc::new(World::from_arc(idx_a));
    let world_b = Arc::new(World::from_arc(Arc::clone(&idx_b)));

    let stray = InsFleetQuery::new(&world_a, InsConfig::new(sc.k, sc.rho)).unwrap();
    let mut fleet: FleetEngine<VorTree, InsFleetQuery> =
        FleetEngine::new(Arc::clone(&world_b), FleetConfig::with_threads(1));
    let id = fleet.register(stray);

    let pos = Point::new(42.0, 57.0);
    fleet.tick_all(|_| pos);
    let mut got = fleet.query(id).unwrap().current_knn();
    got.sort_unstable();
    let mut want = idx_b.voronoi().knn_brute(pos, sc.k);
    want.sort_unstable();
    assert_eq!(got, want, "results must come from the engine's world");
}

#[test]
fn network_fleet_matches_sequential_across_epoch_swap() {
    let ticks = 50usize;
    let swap_at = 25usize;
    let clients = 24usize;
    let k = 3usize;
    let speed = 0.12;

    let net = Arc::new(
        grid_network(
            &GridConfig {
                cols: 10,
                rows: 10,
                ..GridConfig::default()
            },
            5,
        )
        .unwrap(),
    );
    let sites_a = SiteSet::new(&net, random_site_vertices(&net, 22, 5).unwrap()).unwrap();
    let sites_b = SiteSet::new(&net, random_site_vertices(&net, 18, 91).unwrap()).unwrap();
    let nvd_a = NetworkVoronoi::build(&net, &sites_a);
    let nvd_b = NetworkVoronoi::build(&net, &sites_b);

    let tours: Vec<NetTrajectory> = (0..clients)
        .map(|c| NetTrajectory::random_tour(&net, 6, 100 + c as u64).unwrap())
        .collect();
    let pos_of = |c: usize, tick: usize| -> NetPosition {
        tours[c].position_looped(&net, speed * tick as f64 + 0.31 * c as f64)
    };

    // Sequential reference with a manual rebind.
    let reference: Vec<(Vec<insq_roadnet::SiteIdx>, QueryStats)> = (0..clients)
        .map(|c| {
            let mut p =
                NetInsProcessor::new(&*net, &sites_a, &nvd_a, NetInsConfig::new(k, 1.6)).unwrap();
            for tick in 0..ticks {
                if tick == swap_at {
                    p.rebind(&sites_b, &nvd_b);
                }
                p.tick(pos_of(c, tick));
            }
            (p.current_knn(), *p.stats())
        })
        .collect();

    for threads in [1usize, 2, 8] {
        let world = Arc::new(World::new(NetworkWorld::build(
            Arc::clone(&net),
            sites_a.clone(),
        )));
        let mut fleet: FleetEngine<NetworkWorld, NetFleetQuery> =
            FleetEngine::new(Arc::clone(&world), FleetConfig { shards: 5, threads });
        for _ in 0..clients {
            fleet.register(NetFleetQuery::new(&world, NetInsConfig::new(k, 1.6)).unwrap());
        }
        for tick in 0..ticks {
            if tick == swap_at {
                let (_, snap) = world.snapshot();
                world.publish(snap.with_sites(sites_b.clone()));
            }
            let positions: Vec<NetPosition> = (0..clients).map(|c| pos_of(c, tick)).collect();
            let summary = fleet.tick_all(|id| positions[id.index()]);
            assert_eq!(summary.ticked as usize, clients);
        }
        for (c, (ref_knn, ref_stats)) in reference.iter().enumerate() {
            let q = fleet.query(QueryId(c as u64)).unwrap();
            assert_eq!(
                q.current_knn(),
                *ref_knn,
                "client {c} knn, threads={threads}"
            );
            assert_eq!(
                *q.stats(),
                *ref_stats,
                "client {c} stats, threads={threads}"
            );
        }
    }
}

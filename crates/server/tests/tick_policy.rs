//! The tick contract: `FleetEngine::tick(policy, positions, sink)`.
//!
//! * `Barrier` through the generic entry point is bit-identical to the
//!   `tick_all_outcomes` wrapper (and hence, via
//!   `tests/fleet_equivalence.rs`, to sequential execution) at 1/2/8
//!   threads, across an epoch swap.
//! * `Deadline { max_staleness }` re-serves stale queries (their result
//!   stands, disposition `Stale`), never holds one stale past the
//!   bound (force-tick → `Refreshed`, which also propagates epoch
//!   swaps), stays bit-identical across thread counts, and converges
//!   to exact kNN once position updates resume.

use std::sync::Arc;

use insq_core::{InsConfig, MovingKnn, TickOutcome};
use insq_geom::{Point, Trajectory};
use insq_index::VorTree;
use insq_server::{
    FleetConfig, FleetEngine, InsFleetQuery, QueryId, TickDisposition, TickPolicy, TickPos,
    TickSummary, World,
};
use insq_workload::FleetScenario;

const CLIENTS: usize = 60;
const TICKS: usize = 60;
const SWAP_AT: usize = 30;

fn scenario() -> FleetScenario {
    FleetScenario {
        clients: CLIENTS,
        n: 1_000,
        k: 4,
        ticks: TICKS,
        updates: vec![SWAP_AT],
        seed: 4242,
        ..Default::default()
    }
}

fn build_fleet(
    world: &Arc<World<VorTree>>,
    sc: &FleetScenario,
    threads: usize,
    shards: usize,
) -> FleetEngine<VorTree, InsFleetQuery> {
    let mut fleet = FleetEngine::new(Arc::clone(world), FleetConfig { shards, threads });
    for _ in 0..sc.clients {
        fleet.register(InsFleetQuery::new(world, InsConfig::new(sc.k, sc.rho)).unwrap());
    }
    fleet
}

/// A client's tick-`t` position, shared by every run of one test.
fn positions(sc: &FleetScenario, trajs: &[Trajectory], tick: usize) -> Vec<Point> {
    (0..sc.clients)
        .map(|c| sc.position(&trajs[c], c, tick))
        .collect()
}

#[test]
fn barrier_through_generic_tick_matches_tick_all_outcomes() {
    let sc = scenario();
    let idx_v0 = Arc::new(VorTree::build(sc.points(0), sc.clip_window()).unwrap());
    let idx_v1 = Arc::new(VorTree::build(sc.points(1), sc.clip_window()).unwrap());
    let trajs: Vec<Trajectory> = (0..sc.clients).map(|c| sc.client_trajectory(c)).collect();

    // Reference: the classic wrapper, single-threaded.
    let world = Arc::new(World::from_arc(Arc::clone(&idx_v0)));
    let mut reference = build_fleet(&world, &sc, 1, 7);
    let mut ref_outcomes: Vec<Vec<(QueryId, TickOutcome)>> = Vec::new();
    let mut ref_summaries: Vec<TickSummary> = Vec::new();
    for tick in 0..sc.ticks {
        if tick == SWAP_AT {
            world.publish_arc(Arc::clone(&idx_v1));
        }
        let pos = positions(&sc, &trajs, tick);
        let mut out = Vec::new();
        ref_summaries.push(reference.tick_all_outcomes(|id| pos[id.index()], &mut out));
        ref_outcomes.push(out);
    }
    let ref_total = reference.stats().total;

    for threads in [1usize, 2, 8] {
        let world = Arc::new(World::from_arc(Arc::clone(&idx_v0)));
        let mut fleet = build_fleet(&world, &sc, threads, 7);
        for tick in 0..sc.ticks {
            if tick == SWAP_AT {
                world.publish_arc(Arc::clone(&idx_v1));
            }
            let pos = positions(&sc, &trajs, tick);
            let mut sink: Vec<(QueryId, TickDisposition)> = Vec::new();
            let summary = fleet.tick(
                TickPolicy::Barrier,
                |id| TickPos::Fresh(pos[id.index()]),
                &mut sink,
            );
            assert_eq!(summary, ref_summaries[tick], "summary (t={tick})");
            assert_eq!(summary.stale, 0, "a barrier tick never re-serves");
            assert_eq!(summary.refreshed, 0);
            // Dispositions are all Fresh and carry the wrapper's exact
            // outcomes in the wrapper's exact order.
            let as_outcomes: Vec<(QueryId, TickOutcome)> = sink
                .iter()
                .map(|&(id, d)| match d {
                    TickDisposition::Fresh(o) => (id, o),
                    other => panic!("barrier produced {other:?} for {id:?}"),
                })
                .collect();
            assert_eq!(as_outcomes, ref_outcomes[tick], "outcomes (t={tick})");
        }
        assert_eq!(fleet.stats().total, ref_total, "threads={threads}");
        for c in 0..sc.clients {
            assert_eq!(
                fleet.query(QueryId(c as u64)).unwrap().current_knn(),
                reference.query(QueryId(c as u64)).unwrap().current_knn(),
                "client {c} knn (threads={threads})"
            );
        }
    }
}

/// Which clients send no update at `tick`: a deterministic pure pattern
/// so every thread count replays the identical schedule. Roughly a
/// third of the fleet is silent at any time during the outage window.
fn silent(c: usize, tick: usize) -> bool {
    (20..44).contains(&tick) && (c + tick / 6).is_multiple_of(3)
}

struct DeadlineRun {
    dispositions: Vec<Vec<(QueryId, TickDisposition)>>,
    summaries: Vec<TickSummary>,
    final_knn: Vec<Vec<insq_voronoi::SiteId>>,
}

fn run_deadline(
    sc: &FleetScenario,
    idx_v0: &Arc<VorTree>,
    idx_v1: &Arc<VorTree>,
    trajs: &[Trajectory],
    threads: usize,
    shards: usize,
    max_staleness: u64,
) -> DeadlineRun {
    let world = Arc::new(World::from_arc(Arc::clone(idx_v0)));
    let mut fleet = build_fleet(&world, sc, threads, shards);
    // What the serving layer would hold for each client: its last
    // delivered position.
    let mut held: Vec<Point> = positions(sc, trajs, 0);
    let mut dispositions = Vec::new();
    let mut summaries = Vec::new();
    for tick in 0..sc.ticks {
        if tick == SWAP_AT {
            world.publish_arc(Arc::clone(idx_v1));
        }
        let fresh = positions(sc, trajs, tick);
        let feed: Vec<TickPos<Point>> = (0..sc.clients)
            .map(|c| {
                if tick > 0 && silent(c, tick) {
                    TickPos::Held(held[c])
                } else {
                    TickPos::Fresh(fresh[c])
                }
            })
            .collect();
        let mut sink: Vec<(QueryId, TickDisposition)> = Vec::new();
        let summary = fleet.tick(
            TickPolicy::Deadline { max_staleness },
            |id| feed[id.index()],
            &mut sink,
        );
        for c in 0..sc.clients {
            if let TickPos::Fresh(p) = feed[c] {
                held[c] = p;
            }
        }
        dispositions.push(sink);
        summaries.push(summary);
    }
    DeadlineRun {
        dispositions,
        summaries,
        final_knn: (0..sc.clients)
            .map(|c| fleet.query(QueryId(c as u64)).unwrap().current_knn())
            .collect(),
    }
}

#[test]
fn deadline_re_serves_bounds_staleness_and_converges() {
    let sc = scenario();
    let idx_v0 = Arc::new(VorTree::build(sc.points(0), sc.clip_window()).unwrap());
    let idx_v1 = Arc::new(VorTree::build(sc.points(1), sc.clip_window()).unwrap());
    let trajs: Vec<Trajectory> = (0..sc.clients).map(|c| sc.client_trajectory(c)).collect();
    let max_staleness = 3u64;

    let run = run_deadline(&sc, &idx_v0, &idx_v1, &trajs, 1, 7, max_staleness);

    // Per-tick bookkeeping is self-consistent and some of each kind
    // actually happened.
    let mut saw_stale = 0u64;
    let mut saw_refreshed = 0u64;
    for (tick, (sink, summary)) in run.dispositions.iter().zip(&run.summaries).enumerate() {
        assert_eq!(sink.len(), sc.clients, "one disposition per query");
        let fresh = sink
            .iter()
            .filter(|(_, d)| matches!(d, TickDisposition::Fresh(_)))
            .count() as u64;
        let refreshed = sink
            .iter()
            .filter(|(_, d)| matches!(d, TickDisposition::Refreshed(_)))
            .count() as u64;
        let stale = sink
            .iter()
            .filter(|(_, d)| matches!(d, TickDisposition::Stale))
            .count() as u64;
        assert_eq!(summary.ticked, fresh + refreshed, "t={tick}");
        assert_eq!(summary.refreshed, refreshed, "t={tick}");
        assert_eq!(summary.stale, stale, "t={tick}");
        saw_stale += stale;
        saw_refreshed += refreshed;
    }
    assert!(saw_stale > 0, "the outage produced re-serves");
    assert!(saw_refreshed > 0, "the outage outlasted max_staleness");

    // No client is ever re-served more than max_staleness ticks in a
    // row — the deadline's whole point.
    let mut streak = vec![0u64; sc.clients];
    for sink in &run.dispositions {
        for &(id, d) in sink {
            let s = &mut streak[id.index()];
            match d {
                TickDisposition::Stale => {
                    *s += 1;
                    assert!(
                        *s <= max_staleness,
                        "{id:?} held stale past the deadline ({s} > {max_staleness})"
                    );
                }
                _ => *s = 0,
            }
        }
    }

    // The epoch swap reaches every query within max_staleness ticks of
    // SWAP_AT even though a third of the fleet is silent.
    let rebinds_through_deadline: u64 = run.summaries[SWAP_AT..=SWAP_AT + max_staleness as usize]
        .iter()
        .map(|s| s.rebinds)
        .sum();
    assert_eq!(
        rebinds_through_deadline, sc.clients as u64,
        "force-ticks must propagate the epoch swap to silent queries"
    );

    // Convergence: updates resumed at tick 44; every query's final
    // answer is the exact kNN of its final position on the new epoch.
    for (c, traj) in trajs.iter().enumerate().take(sc.clients) {
        let pos = sc.position(traj, c, sc.ticks - 1);
        let mut got = run.final_knn[c].clone();
        got.sort_unstable();
        let mut want = idx_v1.voronoi().knn_brute(pos, sc.k);
        want.sort_unstable();
        assert_eq!(got, want, "client {c} converged after the outage");
    }
}

#[test]
fn deadline_is_bit_identical_across_thread_counts() {
    let sc = scenario();
    let idx_v0 = Arc::new(VorTree::build(sc.points(0), sc.clip_window()).unwrap());
    let idx_v1 = Arc::new(VorTree::build(sc.points(1), sc.clip_window()).unwrap());
    let trajs: Vec<Trajectory> = (0..sc.clients).map(|c| sc.client_trajectory(c)).collect();

    let reference = run_deadline(&sc, &idx_v0, &idx_v1, &trajs, 1, 7, 3);
    for threads in [2usize, 8] {
        let run = run_deadline(&sc, &idx_v0, &idx_v1, &trajs, threads, 7, 3);
        assert_eq!(
            run.dispositions, reference.dispositions,
            "dispositions diverged (threads={threads})"
        );
        assert_eq!(
            run.summaries, reference.summaries,
            "summaries diverged (threads={threads})"
        );
        assert_eq!(
            run.final_knn, reference.final_knn,
            "results diverged (threads={threads})"
        );
    }
}

#[test]
fn zero_staleness_always_reticks_held_queries() {
    let sc = scenario();
    let idx = Arc::new(VorTree::build(sc.points(0), sc.clip_window()).unwrap());
    let world = Arc::new(World::from_arc(Arc::clone(&idx)));
    let mut fleet = build_fleet(&world, &sc, 2, 7);
    let p0 = positions(
        &sc,
        &(0..sc.clients)
            .map(|c| sc.client_trajectory(c))
            .collect::<Vec<_>>(),
        0,
    );
    fleet.tick(
        TickPolicy::Barrier,
        |id| TickPos::Fresh(p0[id.index()]),
        &mut (),
    );
    // Everyone held, max_staleness = 0: every query force-ticks.
    let summary = fleet.tick(
        TickPolicy::Deadline { max_staleness: 0 },
        |id| TickPos::Held(p0[id.index()]),
        &mut (),
    );
    assert_eq!(summary.ticked, sc.clients as u64);
    assert_eq!(summary.refreshed, sc.clients as u64);
    assert_eq!(summary.stale, 0);
}

#[test]
#[should_panic(expected = "TickPolicy::Barrier requires a fresh position")]
fn barrier_panics_on_held_positions() {
    let sc = scenario();
    let idx = Arc::new(VorTree::build(sc.points(0), sc.clip_window()).unwrap());
    let world = Arc::new(World::from_arc(idx));
    let mut fleet = build_fleet(&world, &sc, 1, 4);
    fleet.tick(
        TickPolicy::Barrier,
        |_| TickPos::<Point>::Held(Point::new(1.0, 1.0)),
        &mut (),
    );
}
